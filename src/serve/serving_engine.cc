#include "serve/serving_engine.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace ianus::serve
{

// --- Scheduling policies ----------------------------------------------------

std::vector<std::size_t>
FcfsPolicy::selectBatch(const std::vector<QueuedRequest> &queue,
                        const SchedulerContext &ctx)
{
    (void)queue;
    (void)ctx;
    return {0};
}

namespace
{

/** The EDF completion budget: one definition for the scheduler's
 *  urgency key and both deadlineMiss accounting sites. */
double
deadlineMs(double arrival_ms, const workloads::InferenceRequest &req,
           double slo_ms_per_token)
{
    return arrival_ms +
           slo_ms_per_token * static_cast<double>(req.outputTokens);
}

/** Queue indices ordered by ascending @p key (stable: arrival order). */
template <typename KeyFn>
std::vector<std::size_t>
orderBy(const std::vector<QueuedRequest> &queue, KeyFn key)
{
    std::vector<std::size_t> order(queue.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return key(queue[a]) < key(queue[b]);
                     });
    return order;
}

} // namespace

double
SchedulingPolicy::urgency(const QueuedRequest &q,
                          const SchedulerContext &ctx) const
{
    (void)ctx;
    return q.arrivalMs;
}

SjfPolicy::SjfPolicy(double output_weight) : outputWeight_(output_weight)
{
    if (output_weight < 0.0)
        IANUS_FATAL("SJF output weight must be non-negative, got ",
                    output_weight);
}

double
SjfPolicy::urgency(const QueuedRequest &q,
                   const SchedulerContext &ctx) const
{
    (void)ctx;
    return static_cast<double>(q.request.inputTokens) +
           outputWeight_ * static_cast<double>(q.request.outputTokens);
}

std::vector<std::size_t>
SjfPolicy::selectBatch(const std::vector<QueuedRequest> &queue,
                       const SchedulerContext &ctx)
{
    // Dispatch order and preemption urgency share one key, so an
    // eviction always makes room for the request the next admission
    // round would pick anyway.
    return orderBy(queue, [&](const QueuedRequest &q) {
        return urgency(q, ctx);
    });
}

double
EdfPolicy::urgency(const QueuedRequest &q,
                   const SchedulerContext &ctx) const
{
    return deadlineMs(q.arrivalMs, q.request, ctx.sloMsPerToken);
}

std::vector<std::size_t>
EdfPolicy::selectBatch(const std::vector<QueuedRequest> &queue,
                       const SchedulerContext &ctx)
{
    return orderBy(queue, [&](const QueuedRequest &q) {
        return urgency(q, ctx);
    });
}

std::unique_ptr<SchedulingPolicy>
makePolicy(const std::string &name)
{
    if (name == "fcfs")
        return std::make_unique<FcfsPolicy>();
    if (name == "sjf")
        return std::make_unique<SjfPolicy>();
    if (name == "edf")
        return std::make_unique<EdfPolicy>();
    IANUS_FATAL("unknown scheduling policy '", name,
                "' (expected fcfs, sjf, or edf)");
}

// --- Batching modes ---------------------------------------------------------

const char *
toString(BatchingMode mode)
{
    switch (mode) {
      case BatchingMode::None: return "none";
      case BatchingMode::Static: return "static";
      case BatchingMode::Continuous: return "continuous";
    }
    return "?";
}

BatchingMode
makeBatchingMode(const std::string &name)
{
    if (name == "none")
        return BatchingMode::None;
    if (name == "static")
        return BatchingMode::Static;
    if (name == "continuous")
        return BatchingMode::Continuous;
    IANUS_FATAL("unknown batching mode '", name,
                "' (expected none, static, or continuous)");
}

// --- Routers ----------------------------------------------------------------

std::size_t
RoundRobinRouter::route(const QueuedRequest &request,
                        const std::vector<ReplicaStatus> &replicas,
                        double now_ms)
{
    (void)request;
    (void)now_ms;
    const std::size_t n = replicas.size();
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t d = (cursor_ + k) % n;
        if (replicas[d].idle) {
            cursor_ = (d + 1) % n;
            return d;
        }
    }
    IANUS_FATAL("round-robin router called with no idle replica");
}

std::size_t
LeastLoadedRouter::route(const QueuedRequest &request,
                         const std::vector<ReplicaStatus> &replicas,
                         double now_ms)
{
    (void)request;
    (void)now_ms;
    const ReplicaStatus *best = nullptr;
    for (const ReplicaStatus &r : replicas) {
        if (!r.idle)
            continue;
        if (!best || r.busyMs < best->busyMs ||
            (r.busyMs == best->busyMs && r.dispatched < best->dispatched))
            best = &r;
    }
    if (!best)
        IANUS_FATAL("least-loaded router called with no idle replica");
    return best->index;
}

std::size_t
QueueDepthRouter::route(const QueuedRequest &request,
                        const std::vector<ReplicaStatus> &replicas,
                        double now_ms)
{
    (void)request;
    (void)now_ms;
    const ReplicaStatus *best = nullptr;
    for (const ReplicaStatus &r : replicas) {
        if (!r.idle)
            continue;
        auto key = [](const ReplicaStatus &s) {
            // kvPressure right after resident: a replica whose blocks
            // are spoken for is "deeper" than its batch slots show.
            // 0.0 everywhere when the KV manager is off, so the
            // ordering is then bit-identical to the pre-KV tuple.
            return std::make_tuple(s.resident, s.kvPressure,
                                   s.backlogTokens, s.busyMs,
                                   s.dispatched, s.index);
        };
        if (!best || key(r) < key(*best))
            best = &r;
    }
    if (!best)
        IANUS_FATAL("queue-depth router called with no accepting replica");
    return best->index;
}

namespace
{

/**
 * The predicted-finish score (see PredictedFinishRouter): the replica's
 * in-flight segment, then every pending prefill (exclusive, charged at
 * the candidate's prefill estimate), then the candidate's generation
 * dilated by the batch occupancy it joins.
 */
double
predictedFinishMs(const ReplicaStatus &r, double now_ms)
{
    double start = std::max(now_ms, r.freeAtMs);
    std::size_t generating = r.resident - r.pendingPrefill;
    double service =
        r.estPrefillMs * (1.0 + static_cast<double>(r.pendingPrefill)) +
        r.estGenMs * (1.0 + static_cast<double>(generating));
    // KV pressure dilates the service estimate: an overcommitted
    // replica serves every segment at spill-degraded cadence, and a
    // nearly-full one is one long admission away from it. x 1.0
    // exactly when the KV manager is off.
    return start + service * (1.0 + r.kvPressure);
}

/** Earliest predicted finish among accepting replicas, optionally
 *  restricted to those without parked suspended KV. */
const ReplicaStatus *
earliestFinish(const std::vector<ReplicaStatus> &replicas, double now_ms,
               bool skip_parked_kv)
{
    const ReplicaStatus *best = nullptr;
    double best_finish = 0.0;
    for (const ReplicaStatus &r : replicas) {
        if (!r.idle)
            continue;
        if (skip_parked_kv && r.suspendedKv > 0)
            continue;
        double finish = predictedFinishMs(r, now_ms);
        if (!best || finish < best_finish ||
            (finish == best_finish && r.index < best->index))
            best = &r;
        if (best == &r)
            best_finish = finish;
    }
    return best;
}

} // namespace

std::size_t
PredictedFinishRouter::route(const QueuedRequest &request,
                             const std::vector<ReplicaStatus> &replicas,
                             double now_ms)
{
    (void)request;
    const ReplicaStatus *best = earliestFinish(replicas, now_ms, false);
    if (!best)
        IANUS_FATAL(
            "predicted-finish router called with no accepting replica");
    return best->index;
}

std::size_t
KvAffinityRouter::route(const QueuedRequest &request,
                        const std::vector<ReplicaStatus> &replicas,
                        double now_ms)
{
    // Affinity first: a resumed request's KV cache lives on exactly one
    // replica — go back to it whenever it accepts. (A live drain pins
    // resumes there before routing; this branch keeps the choice
    // function total.)
    if (request.resumed && request.boundReplica < replicas.size() &&
        replicas[request.boundReplica].idle)
        return request.boundReplica;
    // Session stickiness second: a later turn whose prefix KV is still
    // pinned on one replica goes back to it — the delta-only re-prefill
    // there beats a full re-prefill anywhere else — unless that replica
    // is drowning in KV pressure, where re-prefilling elsewhere is
    // cheaper than queueing behind spill-degraded segments.
    if (request.sessionHitReplica != QueuedRequest::noReplica &&
        request.sessionHitReplica < replicas.size()) {
        const ReplicaStatus &bound = replicas[request.sessionHitReplica];
        if (bound.idle && bound.kvPressure <= stickyPressureLimit)
            return bound.index;
    }
    // Fresh work avoids replicas whose open slot is spoken for by a
    // parked evictee; among the rest, earliest predicted finish.
    const ReplicaStatus *best = earliestFinish(replicas, now_ms, true);
    if (!best)
        best = earliestFinish(replicas, now_ms, false);
    if (!best)
        IANUS_FATAL(
            "kv-affinity router called with no accepting replica");
    return best->index;
}

SloBudgetRouter::SloBudgetRouter(double slo_ms_per_token)
    : sloMsPerToken_(slo_ms_per_token)
{
    if (!(slo_ms_per_token > 0.0))
        IANUS_FATAL("slo-budget router needs a positive per-token SLO "
                    "in ms, got ",
                    slo_ms_per_token);
}

std::size_t
SloBudgetRouter::route(const QueuedRequest &request,
                       const std::vector<ReplicaStatus> &replicas,
                       double now_ms)
{
    // Feasible set: accepting replicas predicted to finish within the
    // candidate's completion budget. Among them, the *latest* predicted
    // finish wins (ties: lowest index) — spend the least replica that
    // still meets the deadline, and keep the fast ones free for
    // requests whose budgets actually need them.
    const double deadline =
        deadlineMs(request.arrivalMs, request.request, sloMsPerToken_);
    const ReplicaStatus *best = nullptr;
    double best_finish = 0.0;
    for (const ReplicaStatus &r : replicas) {
        if (!r.idle)
            continue;
        const double finish = predictedFinishMs(r, now_ms);
        if (finish > deadline)
            continue;
        if (!best || finish > best_finish) {
            best = &r;
            best_finish = finish;
        }
    }
    if (best)
        return best->index;
    // Nobody meets the budget: degrade to predicted-finish (the
    // least-bad lateness) rather than wasting a slow replica's time on
    // a request that is already lost.
    const ReplicaStatus *fallback = earliestFinish(replicas, now_ms, false);
    if (!fallback)
        IANUS_FATAL("slo-budget router called with no accepting replica");
    return fallback->index;
}

std::unique_ptr<Router>
makeRouter(const std::string &name, double slo_ms_per_token)
{
    if (name == "round-robin" || name == "rr")
        return std::make_unique<RoundRobinRouter>();
    if (name == "least-loaded" || name == "ll")
        return std::make_unique<LeastLoadedRouter>();
    if (name == "queue-depth" || name == "qd")
        return std::make_unique<QueueDepthRouter>();
    if (name == "predicted-finish" || name == "pf")
        return std::make_unique<PredictedFinishRouter>();
    if (name == "kv-affinity" || name == "kv")
        return std::make_unique<KvAffinityRouter>();
    if (name == "slo-budget" || name == "slo")
        return std::make_unique<SloBudgetRouter>(slo_ms_per_token);
    IANUS_FATAL("unknown router '", name,
                "' (expected round-robin, least-loaded, queue-depth, "
                "predicted-finish, kv-affinity, or slo-budget)");
}

// --- ServingReport ----------------------------------------------------------

namespace
{

/** Percentile of an already-sorted sample vector. */
double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (p <= 0.0)
        return sorted.front();
    if (p >= 100.0)
        return sorted.back();
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

/** Sort @p values in place and read all of @p ps off the one sort.
 *  The percentile contract (see ServingReport::percentile): empty
 *  values yield 0.0, p clamps to [0, 100], NaN p is fatal. */
std::vector<double>
percentilesInPlace(std::vector<double> &values,
                   const std::vector<double> &ps)
{
    // NaN names no rank: reject it even on an empty sample, so the
    // caller's bug surfaces whatever the data happens to hold.
    for (double p : ps)
        if (std::isnan(p))
            IANUS_FATAL("percentile p must be a number (NaN names no "
                        "rank); p outside [0, 100] clamps");
    std::vector<double> out(ps.size(), 0.0);
    if (values.empty())
        return out;
    std::sort(values.begin(), values.end());
    for (std::size_t i = 0; i < ps.size(); ++i)
        out[i] = percentileSorted(values, ps[i]);
    return out;
}

/** Gather one sample per result into a reused per-thread buffer:
 *  repeated summary()/percentile calls over a large report sort the
 *  same allocation instead of growing a fresh vector each time
 *  (thread_local keeps concurrent shard workers independent). */
template <typename Sample>
std::vector<double> &
gather(const std::vector<RequestResult> &results, Sample sample)
{
    thread_local std::vector<double> buf;
    buf.clear();
    buf.reserve(results.size());
    for (const RequestResult &r : results)
        buf.push_back(sample(r));
    return buf;
}

} // namespace

std::vector<double>
ServingReport::percentiles(std::vector<double> values,
                           const std::vector<double> &ps)
{
    return percentilesInPlace(values, ps);
}

double
ServingReport::percentile(std::vector<double> values, double p)
{
    return percentiles(std::move(values), {p}).front();
}

std::vector<double>
ServingReport::latencyPercentiles(const std::vector<double> &ps) const
{
    return percentilesInPlace(
        gather(results, [](const RequestResult &r) { return r.totalMs(); }),
        ps);
}

double
ServingReport::latencyPercentile(double p) const
{
    return latencyPercentiles({p}).front();
}

std::vector<double>
ServingReport::ttftPercentiles(const std::vector<double> &ps) const
{
    return percentilesInPlace(gather(results,
                                     [](const RequestResult &r) {
                                         return r.firstTokenMs;
                                     }),
                              ps);
}

double
ServingReport::ttftPercentile(double p) const
{
    return ttftPercentiles({p}).front();
}

std::vector<double>
ServingReport::serviceTimePercentiles(const std::vector<double> &ps) const
{
    return percentilesInPlace(gather(results,
                                     [](const RequestResult &r) {
                                         return r.serviceMs;
                                     }),
                              ps);
}

double
ServingReport::serviceTimePercentile(double p) const
{
    return serviceTimePercentiles({p}).front();
}

double
ServingReport::tokensPerSecond() const
{
    return makespanMs > 0.0
               ? static_cast<double>(generatedTokens) /
                     (makespanMs / 1000.0)
               : 0.0;
}

double
ServingReport::sloMissRate() const
{
    if (results.empty())
        return 0.0;
    std::size_t misses = 0;
    for (const RequestResult &r : results)
        misses += r.sloMiss ? 1 : 0;
    return static_cast<double>(misses) /
           static_cast<double>(results.size());
}

double
ServingReport::deadlineMissRate() const
{
    if (results.empty())
        return 0.0;
    std::size_t misses = 0;
    for (const RequestResult &r : results)
        misses += r.deadlineMiss ? 1 : 0;
    return static_cast<double>(misses) /
           static_cast<double>(results.size());
}

double
ServingReport::meanUtilization() const
{
    if (replicas.empty())
        return 0.0;
    double sum = 0.0;
    for (const ReplicaUtilization &r : replicas)
        sum += r.utilization;
    return sum / static_cast<double>(replicas.size());
}

std::uint64_t
ServingReport::preemptions() const
{
    std::uint64_t total = 0;
    for (const RequestResult &r : results)
        total += r.preemptions;
    return total;
}

double
ServingReport::preemptionRate() const
{
    if (results.empty())
        return 0.0;
    std::size_t evicted = 0;
    for (const RequestResult &r : results)
        evicted += r.preemptions > 0 ? 1 : 0;
    return static_cast<double>(evicted) /
           static_cast<double>(results.size());
}

double
ServingReport::kvShedRate() const
{
    const std::uint64_t offered =
        static_cast<std::uint64_t>(results.size()) + kvShed;
    return offered > 0
               ? static_cast<double>(kvShed) /
                     static_cast<double>(offered)
               : 0.0;
}

double
ServingReport::sloGoodputTokensPerSec() const
{
    if (makespanMs <= 0.0)
        return 0.0;
    std::uint64_t good = 0;
    for (const RequestResult &r : results)
        if (!r.deadlineMiss)
            good += r.request.outputTokens;
    return static_cast<double>(good) / (makespanMs / 1000.0);
}

double
ServingReport::prefixHitRate() const
{
    const std::uint64_t turns = prefixHits + prefixMisses;
    return turns > 0
               ? static_cast<double>(prefixHits) /
                     static_cast<double>(turns)
               : 0.0;
}

std::size_t
ServingReport::sessions() const
{
    std::set<std::uint64_t> ids;
    for (const RequestResult &r : results)
        if (r.sessionId != 0)
            ids.insert(r.sessionId);
    return ids.size();
}

std::vector<double>
ServingReport::sessionLatenciesMs() const
{
    // First arrival to last finish per session, ascending session id —
    // a map keeps the order deterministic regardless of result order.
    std::map<std::uint64_t, std::pair<double, double>> span;
    for (const RequestResult &r : results) {
        if (r.sessionId == 0)
            continue;
        auto [it, fresh] = span.emplace(
            r.sessionId, std::make_pair(r.arrivalMs, r.finishMs));
        if (!fresh) {
            it->second.first = std::min(it->second.first, r.arrivalMs);
            it->second.second = std::max(it->second.second, r.finishMs);
        }
    }
    std::vector<double> out;
    out.reserve(span.size());
    for (const auto &[id, s] : span)
        out.push_back(s.second - s.first);
    return out;
}

double
ServingReport::sessionLatencyPercentile(double p) const
{
    std::vector<double> lat = sessionLatenciesMs();
    return percentilesInPlace(lat, {p}).front();
}

std::vector<SourceSlice>
ServingReport::sourceSlices() const
{
    // Bucket by source id; a map keeps ascending-source order whatever
    // order the results completed in. The slices partition results
    // exactly (every result lands in exactly one bucket), which is the
    // conservation identity the mixed-drain invariant sweep checks.
    std::map<std::uint32_t, std::vector<const RequestResult *>> buckets;
    for (const RequestResult &r : results)
        buckets[r.source].push_back(&r);

    std::vector<SourceSlice> out;
    out.reserve(buckets.size());
    for (const auto &[source, rs] : buckets) {
        SourceSlice s;
        s.source = source;
        s.requests = rs.size();
        std::vector<double> ttft, lat;
        ttft.reserve(rs.size());
        lat.reserve(rs.size());
        std::size_t slo_misses = 0, deadline_misses = 0;
        std::uint64_t met_tokens = 0;
        for (const RequestResult *r : rs) {
            s.generatedTokens += r->request.outputTokens;
            ttft.push_back(r->firstTokenMs);
            lat.push_back(r->totalMs());
            slo_misses += r->sloMiss ? 1 : 0;
            deadline_misses += r->deadlineMiss ? 1 : 0;
            if (!r->deadlineMiss)
                met_tokens += r->request.outputTokens;
        }
        std::vector<double> tp = percentilesInPlace(ttft, {50.0, 95.0});
        s.ttftP50Ms = tp[0];
        s.ttftP95Ms = tp[1];
        std::vector<double> lp = percentilesInPlace(lat, {50.0, 95.0});
        s.latencyP50Ms = lp[0];
        s.latencyP95Ms = lp[1];
        const double n = static_cast<double>(rs.size());
        s.sloMissRate = n > 0.0 ? static_cast<double>(slo_misses) / n : 0.0;
        s.deadlineMissRate =
            n > 0.0 ? static_cast<double>(deadline_misses) / n : 0.0;
        // The fleet makespan, not a per-slice span: per-source goodputs
        // must add up to the fleet's sloGoodputTokensPerSec().
        s.goodputTokensPerSec =
            makespanMs > 0.0
                ? static_cast<double>(met_tokens) / (makespanMs / 1000.0)
                : 0.0;
        out.push_back(s);
    }
    return out;
}

double
ServingReport::meanBatchOccupancy() const
{
    double steps = 0.0;
    double weighted = 0.0;
    for (const RequestResult &r : results) {
        double s = static_cast<double>(r.report.generationSteps);
        steps += s;
        weighted += s * r.meanBatchSize;
    }
    return steps > 0.0 ? weighted / steps : 0.0;
}

std::string
ServingReport::summary() const
{
    std::vector<double> lat = latencyPercentiles({50.0, 95.0, 99.0});
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "%zu requests | %llu tokens | %.1f ms makespan | "
        "%.1f tok/s | latency p50/p95/p99 %.1f/%.1f/%.1f ms | "
        "SLO(<%.0f ms/token) miss rate %.1f%%",
        requests(), (unsigned long long)generatedTokens, makespanMs,
        tokensPerSecond(), lat[0], lat[1], lat[2], sloMsPerToken,
        100.0 * sloMissRate());
    std::string out = buf;
    if (replicas.size() > 1) {
        std::snprintf(buf, sizeof(buf),
                      " | %zu replicas (%s, mean util %.0f%%)",
                      replicas.size(), router.c_str(),
                      100.0 * meanUtilization());
        out += buf;
    }
    if (!batching.empty() && batching != "none") {
        std::snprintf(buf, sizeof(buf),
                      " | batching %s (max %zu, occupancy %.2f)",
                      batching.c_str(), maxBatch, meanBatchOccupancy());
        out += buf;
    }
    if (prefillChunk > 0) {
        std::snprintf(buf, sizeof(buf), " | prefill chunk %llu",
                      (unsigned long long)prefillChunk);
        out += buf;
    }
    if (preempt) {
        std::snprintf(buf, sizeof(buf),
                      " | preempt: %llu evictions (%.0f%% of requests)",
                      (unsigned long long)preemptions(),
                      100.0 * preemptionRate());
        out += buf;
    }
    if (kv.enabled()) {
        std::snprintf(
            buf, sizeof(buf),
            " | kv %llu tok (block %llu, %s, %s): peak pressure %.2f, "
            "frag %.1f%%, shed %llu (%.1f%%), spilled segs %llu",
            (unsigned long long)kv.capacityTokens,
            (unsigned long long)kv.blockTokens, toString(kv.admission),
            toString(kv.layout), kvPeakPressure,
            100.0 * kvMeanFragmentation, (unsigned long long)kvShed,
            100.0 * kvShedRate(), (unsigned long long)kvSpilledSegments);
        out += buf;
    }
    bool typed = false;
    for (ReplicaRole r : roles)
        typed |= r != ReplicaRole::Unified;
    if (typed) {
        std::size_t pre = 0, dec = 0, uni = 0;
        for (ReplicaRole r : roles) {
            if (r == ReplicaRole::Prefill)
                ++pre;
            else if (r == ReplicaRole::Decode)
                ++dec;
            else
                ++uni;
        }
        std::snprintf(buf, sizeof(buf),
                      " | roles %zuP/%zuD/%zuU: %llu handoffs, %.3f GB "
                      "over the KV link in %.1f ms",
                      pre, dec, uni, (unsigned long long)kvTransfers,
                      kvTransferGB, kvTransferMs);
        out += buf;
    }
    if (prefixHits + prefixMisses > 0) {
        std::snprintf(
            buf, sizeof(buf),
            " | sessions %zu: prefix hit %.0f%%, %llu prefill tok saved, "
            "session p95 %.1f ms",
            sessions(), 100.0 * prefixHitRate(),
            (unsigned long long)prefillTokensSaved,
            sessionLatencyPercentile(95.0));
        out += buf;
    }
    return out;
}

// --- ServingEngine ----------------------------------------------------------

ServingEngine::ServingEngine(const CompiledModel &model,
                             ServingOptions opts,
                             std::unique_ptr<SchedulingPolicy> policy)
    : opts_(opts), policy_(std::move(policy))
{
    replicas_.push_back(&model);
    if (!policy_)
        policy_ = std::make_unique<FcfsPolicy>();
    router_ = std::make_unique<RoundRobinRouter>();
    validateOptions();
}

ServingEngine::ServingEngine(const DevicePool &pool, ServingOptions opts,
                             std::unique_ptr<SchedulingPolicy> policy,
                             std::unique_ptr<Router> router)
    : opts_(opts), policy_(std::move(policy)), router_(std::move(router))
{
    if (pool.empty())
        IANUS_FATAL("serving engine needs a non-empty device pool");
    replicas_.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i)
        replicas_.push_back(&pool.replica(i));
    // The pool's own role typing carries over unless the options
    // already chose one; an all-unified pool stays the (bit-identical)
    // empty default.
    if (opts_.roles.empty() && pool.disaggregated())
        opts_.roles = pool.roles();
    if (!policy_)
        policy_ = std::make_unique<FcfsPolicy>();
    if (!router_)
        router_ = std::make_unique<RoundRobinRouter>();
    validateOptions();
}

ServingEngine::ServingEngine(std::vector<const CompiledModel *> replicas,
                             ServingOptions opts,
                             std::unique_ptr<SchedulingPolicy> policy,
                             std::unique_ptr<Router> router)
    : replicas_(std::move(replicas)), opts_(opts),
      policy_(std::move(policy)), router_(std::move(router))
{
    if (replicas_.empty())
        IANUS_FATAL("serving engine needs a non-empty replica view");
    for (const CompiledModel *m : replicas_)
        if (!m)
            IANUS_FATAL("serving engine replica view holds a null model");
    if (!policy_)
        policy_ = std::make_unique<FcfsPolicy>();
    if (!router_)
        router_ = std::make_unique<RoundRobinRouter>();
    validateOptions();
}

void
ServingEngine::validateOptions() const
{
    if (opts_.tokenStride == 0)
        IANUS_FATAL("token stride must be positive (1 = exact)");
    if (opts_.sloMsPerToken <= 0.0)
        IANUS_FATAL("SLO must be a positive per-token latency in ms");
    if (opts_.maxBatch == 0)
        IANUS_FATAL("max batch must be at least 1");
    if (opts_.maxBatch > 1 && opts_.batching == BatchingMode::None)
        IANUS_FATAL("max batch ", opts_.maxBatch,
                    " needs a batching mode (static or continuous)");
    if (opts_.preempt && opts_.batching == BatchingMode::Static)
        IANUS_FATAL("preemption cannot evict from a sealed static "
                    "batch; use batching none or continuous");
    if (opts_.kv.blockTokens == 0)
        IANUS_FATAL("KV block size must be a positive token count");
    if (!opts_.kv.enabled() && opts_.kv.admission != KvAdmission::None)
        IANUS_FATAL("KV admission '", toString(opts_.kv.admission),
                    "' needs a positive KV capacity (capacityTokens is "
                    "0, so nothing bounds admission)");
    if (opts_.kv.enabled() &&
        opts_.kv.capacityTokens < opts_.kv.blockTokens)
        IANUS_FATAL("KV capacity ", opts_.kv.capacityTokens,
                    " tokens is smaller than one ", opts_.kv.blockTokens,
                    "-token block");
    if (std::isnan(opts_.kvLinkGBs) || opts_.kvLinkGBs < 0.0)
        IANUS_FATAL("KV link bandwidth must be a non-negative GB/s "
                    "value (0 derives it from the source replica's PCIe "
                    "parameters), got ",
                    opts_.kvLinkGBs);
    if (!opts_.roles.empty()) {
        if (opts_.roles.size() != replicas_.size())
            IANUS_FATAL("roles list has ", opts_.roles.size(),
                        " entries for ", replicas_.size(), " replicas");
        bool typed = false, prefill_capable = false,
             decode_capable = false;
        for (ReplicaRole r : opts_.roles) {
            typed |= r != ReplicaRole::Unified;
            prefill_capable |= r != ReplicaRole::Decode;
            decode_capable |= r != ReplicaRole::Prefill;
        }
        if (typed && !prefill_capable)
            IANUS_FATAL("a disaggregated pool needs at least one "
                        "prefill-capable (prefill or unified) replica");
        if (typed && !decode_capable)
            IANUS_FATAL("a disaggregated pool needs at least one "
                        "decode-capable (decode or unified) replica");
        if (typed && opts_.batching == BatchingMode::Static)
            IANUS_FATAL("disaggregated pools cannot use static "
                        "batching: a KV handoff joins a running decode "
                        "batch at a token boundary, and a sealed batch "
                        "admits no one");
    }
}

void
ServingEngine::setCompletionHook(CompletionHook hook)
{
    onComplete_ = std::move(hook);
}

std::uint64_t
ServingEngine::inject(const workloads::InferenceRequest &request,
                      double arrival_ms, std::uint32_t source)
{
    if (!injector_)
        IANUS_FATAL("inject() is only legal from inside a completion "
                    "hook during drain(); use submit() otherwise");
    return injector_(request, arrival_ms, source);
}

std::uint64_t
ServingEngine::submit(const workloads::InferenceRequest &request,
                      double arrival_ms, std::uint64_t session_id,
                      std::uint64_t turn_index, std::uint64_t prefix_tokens,
                      std::uint32_t source)
{
    if (request.inputTokens == 0)
        IANUS_FATAL("inference request needs at least one input token");
    if (request.outputTokens == 0)
        IANUS_FATAL("inference request needs at least one output token");
    if (!std::isfinite(arrival_ms) || arrival_ms < 0.0)
        IANUS_FATAL("request arrival must be a finite non-negative time "
                    "in ms, got ",
                    arrival_ms);
    if (arrival_ms < lastArrivalMs_)
        IANUS_FATAL("request arrivals must be non-decreasing (got ",
                    arrival_ms, " ms after ", lastArrivalMs_, " ms)");
    if (session_id == 0 && (turn_index != 0 || prefix_tokens != 0))
        IANUS_FATAL("a single-turn submit (session 0) cannot carry turn ",
                    turn_index, " / prefix ", prefix_tokens);
    if (turn_index == 0 && prefix_tokens != 0)
        IANUS_FATAL("session ", session_id,
                    " turn 0 cannot carry a prefix of ", prefix_tokens,
                    " tokens (nothing precedes it)");
    if (prefix_tokens >= request.inputTokens)
        IANUS_FATAL("session ", session_id, " turn ", turn_index,
                    " has prefix ", prefix_tokens, " >= input ",
                    request.inputTokens,
                    " (each turn must add new prompt tokens)");
    lastArrivalMs_ = arrival_ms;
    QueuedRequest q;
    q.id = nextId_++;
    q.request = request;
    q.arrivalMs = arrival_ms;
    q.sessionId = session_id;
    q.turnIndex = turn_index;
    q.prefixTokens = prefix_tokens;
    q.source = source;
    queue_.push_back(q);
    return q.id;
}

ServingReport
ServingEngine::drain()
{
    ServingReport report;
    report.policy = policy_->name();
    report.router = router_->name();
    report.batching = toString(opts_.batching);
    report.maxBatch = opts_.maxBatch;
    report.prefillChunk = opts_.prefillChunk;
    report.preempt = opts_.preempt;
    report.kv = opts_.kv;
    report.sloMsPerToken = opts_.sloMsPerToken;

    const std::size_t n = replicas_.size();
    report.replicas.assign(n, ReplicaUtilization{});

    const double first_arrival =
        queue_.empty() ? 0.0 : queue_.front().arrivalMs;

    // The discrete-event loop. Ticks only sequence events (arrivals,
    // completions, and batch-segment boundaries, on the shared
    // picosecond time base); all report math carries exact doubles.
    // With maxBatch == 1 and no chunking/preemption every admitted
    // request takes the legacy whole-request service path, so a
    // single-replica FCFS drain reproduces the synchronous PR-1 loop
    // bit for bit. Chunked prefill or preemption routes even batch-1
    // service through the segment loop — token boundaries are what
    // both features schedule at, and so does the KV capacity model
    // (admission and spill are charged at segment granularity).
    // Multi-turn sessions: with the prefix cache on and session-tagged
    // work queued, a completed non-final turn parks its KV on its
    // replica (a pin) so the next turn prefills only its delta there.
    // A tagless drain — or prefixCache off — leaves prefixOn false and
    // every session structure below empty and untouched, keeping the
    // cold path structurally bit-identical.
    bool any_sessions = false;
    std::map<std::uint64_t, std::uint64_t> lastTurn; // session -> max turn
    for (const QueuedRequest &q : queue_) {
        if (q.sessionId == 0)
            continue;
        any_sessions = true;
        auto [it, fresh] = lastTurn.emplace(q.sessionId, q.turnIndex);
        if (!fresh)
            it->second = std::max(it->second, q.turnIndex);
    }
    const bool prefixOn = opts_.prefixCache && any_sessions;
    // Role-typed pools: empty roles (the default) leaves every replica
    // unified and every disaggregation branch below unentered, keeping
    // the drain bit-identical to the role-less engine. Any typed role
    // flips disaggOn and runs the two-stage prefill → KV-transfer →
    // decode lifecycle.
    std::vector<ReplicaRole> roles = opts_.roles;
    if (roles.empty())
        roles.assign(n, ReplicaRole::Unified);
    bool disaggOn = false;
    for (ReplicaRole r : roles)
        disaggOn = disaggOn || r != ReplicaRole::Unified;
    report.roles = opts_.roles;
    const bool segmented = opts_.maxBatch > 1 || opts_.prefillChunk > 0 ||
                           opts_.preempt || opts_.kv.enabled() ||
                           prefixOn || disaggOn;
    sim::EventQueue events;
    report.results.reserve(queue_.size());

    // The waiting queue lives in a structure matched to the policy's
    // declared QueueOrder (see serving_engine.hh): a plain vector that
    // selectBatch reorders at every admission round (Dynamic — the
    // always-correct legacy path), a FIFO that never consults
    // selectBatch (Arrival: FCFS), or an index ordered by (static
    // urgency key, insertion sequence) (StaticUrgency: SJF/EDF) — the
    // incremental replacement for the per-boundary full stable_sort.
    // All three dispatch identical batches in identical order; the
    // fast paths just skip recomputing an order that cannot change.
    const QueueOrder order = policy_->queueOrder();
    std::vector<QueuedRequest> ready;    // Dynamic: arrival order
    std::deque<QueuedRequest> readyFifo; // Arrival
    std::map<std::pair<double, std::uint64_t>, QueuedRequest>
        readyOrdered;                    // StaticUrgency
    std::uint64_t readySeq = 0;
    // A StaticUrgency key is static per request (the urgency contract),
    // so it is computed once at enqueue, against a context carrying
    // only the engine SLO — the same value every live-context call
    // would produce for the shipped policies.
    SchedulerContext staticCtx;
    staticCtx.sloMsPerToken = opts_.sloMsPerToken;
    // Parked evictees per replica — evictees still waiting to resume.
    // Maintained incrementally: counted in on requeue (the only path
    // that enqueues a resumed request) and out as resumes dispatch, so
    // a later candidate never sees a slot as spoken for by an evictee
    // that already took it back, and no admission pass pays a scan of
    // the waiting queue for it.
    std::vector<std::size_t> parked(n, 0);
    auto readyPush = [&](const QueuedRequest &q) {
        if (q.resumed)
            parked[q.boundReplica] += 1;
        switch (order) {
          case QueueOrder::Dynamic:
            ready.push_back(q);
            break;
          case QueueOrder::Arrival:
            readyFifo.push_back(q);
            break;
          case QueueOrder::StaticUrgency:
            readyOrdered.emplace(
                std::make_pair(policy_->urgency(q, staticCtx),
                               readySeq++),
                q);
            break;
        }
    };
    auto readyEmpty = [&] {
        return ready.empty() && readyFifo.empty() && readyOrdered.empty();
    };
    std::vector<double> freeAt(n, 0.0);
    std::vector<bool> busy(n, false);

    // Per-replica batch runtime (populated only on the segment path).
    // A resident request is either awaiting (the rest of) its prefill
    // or generating.
    struct Member
    {
        RequestResult res;
        std::uint64_t prefillDone = 0; ///< prompt tokens summarized
        std::uint64_t chunksDone = 0; ///< prefill segments run so far
        std::uint64_t kvLen = 0;     ///< KV length the next step sees
        std::uint64_t remaining = 0; ///< generation steps left
        double weightedBatch = 0.0;  ///< sum of batch size over steps
        std::uint64_t doneSteps = 0;
        double evictedAtMs = 0.0;    ///< valid while suspended
        /** KV tokens living elsewhere (a disaggregated prefix hit):
         *  the prefill replica writes only [kvBase, kvLen). */
        std::uint64_t kvBase = 0;
        bool handoff = false;        ///< prefill here, decode elsewhere
    };
    struct ReplicaRun
    {
        std::vector<Member> prefill; ///< admission order
        std::vector<Member> gen;     ///< admission order
        /** Members whose prefill finished here but whose decode runs
         *  elsewhere: the KV transfer starts when the segment that
         *  wrote the last prompt chunk completes. */
        std::deque<Member> outbox;
        /** Static mode: membership is frozen once generation starts,
         *  until the replica drains completely. */
        bool sealed = false;
        /** Prompt tokens summarized since the last generation segment:
         *  chunked prefill owes the residents a generation segment
         *  whenever this reaches prefillChunk, so a resident never
         *  stalls for more than ~one chunk of prefill between tokens
         *  (strict alternation through a long prefill, back-to-back
         *  packing of brief ones). */
        std::uint64_t prefillSinceGen = 0;
    };
    std::vector<ReplicaRun> rt(n);

    // Hot-path scratch, reused across events instead of reallocated
    // per segment / per candidate (see docs/PERFORMANCE.md).
    std::vector<std::uint64_t> kvLens; // startSegment KV samples
    std::vector<ReplicaStatus> statuses; // router input

    // Evicted requests, keyed by id: the Member keeps its partial
    // accounting (and, conceptually, its on-replica KV cache) until
    // the matching resumed QueuedRequest is re-dispatched.
    std::map<std::uint64_t, Member> suspended;

    // Disaggregated handoff state (disaggOn drains only, all empty
    // otherwise). A prefilled member rides the KV link to a
    // decode-capable replica: pendingHandoff holds transfers whose
    // decode-side KV reservation did not fit yet (retried at every
    // pump), inbound holds arrived members awaiting a batch slot at
    // their target, and claimedPins marks sessions whose pinned prefix
    // is spoken for by an in-flight disaggregated hit — the pin funds
    // the handoff target's admission and must not be reclaimed or
    // replaced meanwhile.
    struct Handoff
    {
        Member m;
        std::size_t from;
    };
    std::deque<Handoff> pendingHandoff;
    std::vector<std::deque<Member>> inbound(n);
    std::set<std::uint64_t> claimedPins;

    // Per-replica KV block pools (capacity model on only). Each replica
    // derives its spill bandwidth ratio from its own SystemConfig, so a
    // heterogeneous pool prices overcommit honestly.
    const bool kvOn = opts_.kv.enabled();
    std::vector<KvBlockManager> kvm;
    if (kvOn) {
        kvm.reserve(n);
        for (std::size_t d = 0; d < n; ++d)
            kvm.emplace_back(opts_.kv, replicas_[d]->config());
    }

    // Prefix-cache state (prefixOn drains only). At most one pin per
    // session: the replica, token count, and request id of the newest
    // completed non-final turn, whose KV is parked (blocks charged, no
    // batch slot held) awaiting the next turn. pins[d] orders replica
    // d's pinned sessions oldest-first for deterministic reclamation.
    struct SessionState
    {
        bool cached = false;
        std::size_t replica = 0;
        std::uint64_t cachedTokens = 0;
        std::uint64_t reqId = 0;
    };
    std::map<std::uint64_t, SessionState> sessions;
    std::vector<std::deque<std::uint64_t>> pins(n);
    // Drop session sid's pin: consumed by a hit, stale after a miss,
    // or reclaimed for space. The blocks return to sid's replica pool.
    auto unpin = [&](std::uint64_t sid) {
        SessionState &st = sessions[sid];
        std::deque<std::uint64_t> &p = pins[st.replica];
        p.erase(std::find(p.begin(), p.end(), sid));
        if (kvOn)
            kvm[st.replica].release(st.reqId);
        st.cached = false;
    };

    // Worst-case KV a request can reach on replica d: a decoder's
    // cache grows to prompt + every generated token; an encoder stops
    // at the prompt. Reserving this at admission is what lets every
    // admitted request run to completion under the keep-KV-on-replica
    // eviction contract (parking can shrink a charge, never another
    // resident's).
    auto maxKvTokens = [&](std::size_t d, const QueuedRequest &q) {
        return q.request.inputTokens +
               (replicas_[d]->model().decoder() ? q.request.outputTokens
                                                : 0);
    };

    // The replica where queued turn q would hit the prefix cache, or
    // noReplica. The session's pinned prefix must still cover q's
    // declared prefix — an older, shorter pin (the prior turn was shed
    // or completed out of order) cannot serve it and reads as a miss.
    auto sessionHitDev = [&](const QueuedRequest &q) -> std::size_t {
        if (!prefixOn || q.resumed || q.sessionId == 0 ||
            q.turnIndex == 0)
            return QueuedRequest::noReplica;
        auto it = sessions.find(q.sessionId);
        if (it == sessions.end() || !it->second.cached ||
            it->second.cachedTokens < q.prefixTokens)
            return QueuedRequest::noReplica;
        return it->second.replica;
    };

    // Does a candidate admitted to replica d prefill here and decode
    // elsewhere? Only Prefill-role replicas hand off, and only work
    // with a decode phase to ship: encoders and single-token decoders
    // finish at the prefill's LM head and finalize locally.
    auto willHandoff = [&](std::size_t d, const QueuedRequest &q) {
        return disaggOn && roles[d] == ReplicaRole::Prefill &&
               replicas_[d]->model().decoder() &&
               q.request.outputTokens > 1;
    };

    // Prompt tokens a disaggregated prefix hit skips on prefill
    // replica d. The session's pinned KV lives on a decode-capable
    // replica (finalize never pins on Prefill replicas) and stays
    // there: d prefills only the delta and the handoff later lands on
    // the pin — there is no cross-replica hit otherwise.
    auto disaggHitPrefix = [&](std::size_t d,
                               const QueuedRequest &q) -> std::uint64_t {
        if (!willHandoff(d, q) || q.prefixTokens == 0)
            return 0;
        return sessionHitDev(q) != QueuedRequest::noReplica
                   ? q.prefixTokens
                   : 0;
    };

    // KV tokens replica d must reserve to admit q: a handoff member
    // holds only the prompt KV it writes locally (prompt plus the
    // bootstrap token, minus any prefix parked at the handoff target)
    // — the decode-side worst case is reserved by the handoff itself.
    auto admitKvTokens = [&](std::size_t d, const QueuedRequest &q) {
        if (willHandoff(d, q))
            return q.request.inputTokens + 1 - disaggHitPrefix(d, q);
        return maxKvTokens(d, q);
    };

    // KV link bandwidth out of replica d: the explicit option when
    // set, otherwise derived from d's own PCIe parameters — a
    // heterogeneous pool prices each source link honestly.
    auto linkGBsFrom = [&](std::size_t d) {
        return opts_.kvLinkGBs > 0.0
                   ? opts_.kvLinkGBs
                   : deriveKvLinkGBs(replicas_[d]->config());
    };

    // Would the KV manager turn this candidate away from replica d
    // right now? (Capacity off, or `none` admission: never.)
    auto kvBlocked = [&](const QueuedRequest &q, std::size_t d) {
        if (!kvOn)
            return false;
        if (q.resumed)
            return !kvm[d].canResume(q.id);
        // A prefix-cache hit recycles its own pin's blocks on the
        // bound replica: gate admission on the headroom *after* that
        // release, or a pool full of pins would starve the very hit
        // the pin was kept for.
        if (sessionHitDev(q) == d)
            return !kvm[d].releaseWouldAdmit(
                sessions.find(q.sessionId)->second.reqId,
                maxKvTokens(d, q));
        return !kvm[d].canAdmit(admitKvTokens(d, q));
    };

    // The queue-entry view of a resident, for urgency queries: both
    // preemption decision points (victim choice and chunk-boundary
    // prefill pick) must hand the policy the same key inputs.
    auto asQueued = [](const Member &m) {
        QueuedRequest view;
        view.id = m.res.id;
        view.request = m.res.request;
        view.arrivalMs = m.res.arrivalMs;
        return view;
    };

    // Open batch slots on replica d. A replica accepts only at a token
    // boundary (not mid-segment): continuous batching tops the batch up
    // to maxBatch, static batching forms a batch only until its first
    // generation segment (then seals membership until the replica
    // drains), and maxBatch == 1 reduces to plain idleness.
    auto capacity = [&](std::size_t d) -> std::size_t {
        if (busy[d])
            return 0;
        std::size_t resident = rt[d].prefill.size() + rt[d].gen.size();
        if (opts_.maxBatch == 1)
            return resident == 0 ? 1 : 0;
        if (opts_.batching == BatchingMode::Static && rt[d].sealed)
            return 0;
        return opts_.maxBatch > resident ? opts_.maxBatch - resident : 0;
    };

    // Close out a batched member whose last token was emitted at @p now
    // on replica @p d, returning its KV blocks to d's pool — unless it
    // is a non-final session turn, whose KV stays pinned here for the
    // next turn's delta-only prefill.
    auto finalize = [&](Member &m, double now, std::size_t d) {
        bool pin = false;
        // Disaggregated drains never pin on a Prefill replica (the
        // next turn's decode could not run where its prefix lives),
        // and never replace a pin an in-flight handoff has claimed —
        // unpinning it would strand the transfer's accounting.
        if (prefixOn && m.res.sessionId != 0 &&
            replicas_[d]->model().decoder() &&
            !(disaggOn && (roles[d] == ReplicaRole::Prefill ||
                           claimedPins.count(m.res.sessionId)))) {
            auto lt = lastTurn.find(m.res.sessionId);
            if (lt != lastTurn.end() && m.res.turnIndex < lt->second) {
                SessionState &st = sessions[m.res.sessionId];
                // Out-of-order completion left an older turn's pin
                // behind: newest context wins, one pin per session.
                if (st.cached)
                    unpin(m.res.sessionId);
                st.cached = true;
                st.replica = d;
                st.cachedTokens = m.res.request.inputTokens +
                                  m.res.request.outputTokens;
                st.reqId = m.res.id;
                pins[d].push_back(m.res.sessionId);
                if (kvOn)
                    kvm[d].park(m.res.id);
                pin = true;
            }
        }
        if (kvOn && !pin)
            kvm[d].release(m.res.id);
        RequestResult res = std::move(m.res);
        res.finishMs = now;
        // Residency excludes time spent evicted (x - 0.0 == x exactly,
        // so the never-preempted path is bit-identical).
        res.serviceMs = res.finishMs - res.startMs - res.suspendedMs;
        std::uint64_t steps = res.report.generationSteps;
        res.msPerToken =
            steps ? (res.finishMs - res.arrivalMs - res.firstTokenMs) /
                        static_cast<double>(steps)
                  : 0.0;
        res.sloMiss = steps > 0 && res.msPerToken > opts_.sloMsPerToken;
        res.deadlineMiss =
            res.finishMs > deadlineMs(res.arrivalMs, res.request,
                                      opts_.sloMsPerToken);
        res.meanBatchSize =
            m.doneSteps ? m.weightedBatch /
                              static_cast<double>(m.doneSteps)
                        : 1.0;
        report.generatedTokens += res.request.outputTokens;
        report.aggregate.merge(res.report.combined());
        report.makespanMs =
            std::max(report.makespanMs, now - first_arrival);
        report.results.push_back(std::move(res));
        if (onComplete_)
            onComplete_(report.results.back());
    };

    std::function<void(double)> pump; // forward: segments re-enter it

    // Ship a prefilled member's KV to a decode-capable replica (the
    // two-stage lifecycle's transfer edge; disaggOn drains only). The
    // ordering contract (docs/SCHEDULING.md): the target reserves its
    // worst-case KV *before* the transfer is scheduled, and the source
    // releases its prefill-side blocks only when the handoff
    // completes — at no instant is the member's KV unaccounted for. A
    // disaggregated prefix hit must land on its pin's replica (the
    // pin's returned blocks fund the admission); anything else ranks
    // decode-capable replicas by (decode role first, load, fewest free
    // blocks kept free, index). A target that cannot reserve yet parks
    // the transfer in pendingHandoff for the next pump.
    auto startHandoff = [&](Member m, std::size_t from, double now) {
        const std::uint64_t sid = m.res.sessionId;
        const bool claimed = sid != 0 && claimedPins.count(sid) != 0;
        std::size_t to = QueuedRequest::noReplica;
        if (claimed) {
            SessionState &st = sessions[sid];
            to = st.replica;
            if (kvOn &&
                !kvm[to].releaseWouldAdmit(
                    st.reqId, maxKvTokens(to, asQueued(m)))) {
                pendingHandoff.push_back({std::move(m), from});
                return;
            }
            unpin(sid);
            claimedPins.erase(sid);
            if (kvOn) {
                kvm[to].admit(m.res.id, maxKvTokens(to, asQueued(m)));
                kvm[to].setUsed(m.res.id, m.kvBase);
            }
        } else {
            bool found = false;
            std::tuple<int, std::size_t, std::int64_t, std::size_t>
                best_key{};
            for (std::size_t d = 0; d < n; ++d) {
                if (roles[d] == ReplicaRole::Prefill)
                    continue;
                if (kvOn &&
                    !kvm[d].canAdmit(maxKvTokens(d, asQueued(m))))
                    continue;
                std::tuple<int, std::size_t, std::int64_t, std::size_t>
                    key{roles[d] == ReplicaRole::Decode ? 0 : 1,
                        rt[d].prefill.size() + rt[d].gen.size() +
                            inbound[d].size(),
                        kvOn ? -static_cast<std::int64_t>(
                                   kvm[d].freeBlocks())
                             : 0,
                        d};
                if (!found || key < best_key) {
                    found = true;
                    best_key = key;
                    to = d;
                }
            }
            if (!found) {
                // Fatal if no decode-capable replica could hold this
                // member even empty — its handoff would wait forever.
                bool ever = false;
                for (std::size_t d = 0; d < n; ++d)
                    if (roles[d] != ReplicaRole::Prefill)
                        ever = ever || !kvOn ||
                               kvm[d].canEverAdmit(
                                   maxKvTokens(d, asQueued(m)));
                if (!ever)
                    IANUS_FATAL("request ", m.res.id, " needs ",
                                maxKvTokens(from, asQueued(m)),
                                " KV tokens on a decode-capable "
                                "replica, more than any can ever "
                                "hold; its handoff can never "
                                "complete");
                pendingHandoff.push_back({std::move(m), from});
                return;
            }
            if (kvOn)
                kvm[to].admit(m.res.id, maxKvTokens(to, asQueued(m)));
        }
        const std::uint64_t xfer = m.kvLen - m.kvBase;
        const std::uint64_t bytes =
            kvTransferBytes(replicas_[from]->model(), xfer);
        const double ms = kvTransferMs(bytes, linkGBsFrom(from));
        m.res.kvTransferMs = ms;
        m.res.kvTransferTokens = xfer;
        report.kvTransfers += 1;
        report.kvTransferMs += ms;
        report.kvTransferGB += static_cast<double>(bytes) / 1e9;
        const double arriveMs = now + ms;
        events.schedule(
            msToTicks(arriveMs),
            [&, from, to, arriveMs, m = std::move(m)]() mutable {
                if (kvOn) {
                    // The contract's second half: the source lets go
                    // only now that the target holds the KV.
                    kvm[from].release(m.res.id);
                    kvm[to].setUsed(m.res.id, m.kvLen);
                }
                m.res.deviceIndex = to;
                report.replicas[to].dispatched += 1;
                inbound[to].push_back(std::move(m));
                pump(arriveMs);
            });
    };
    auto retryHandoffs = [&](double now) {
        if (pendingHandoff.empty())
            return;
        std::deque<Handoff> retry;
        retry.swap(pendingHandoff);
        for (Handoff &h : retry)
            startHandoff(std::move(h.m), h.from, now);
    };

    // Run the next segment on replica d: one admitted request's prefill
    // (whole, or one prefillChunk-sized slice of it), or a
    // stride-bounded run of batched generation steps over the current
    // members. With chunking off a joiner stalls the whole batch for
    // its summarization (as in continuous-batching serving systems);
    // with chunking on, a generation segment is owed whenever
    // ~prefillChunk prompt tokens have been summarized since the last
    // one, so residents keep emitting tokens under a long prefill while
    // brief prefills still pack back to back.
    auto startSegment = [&](std::size_t d, double now) {
        ReplicaRun &r = rt[d];
        double dur = 0.0;
        bool do_prefill;
        if (r.prefill.empty())
            do_prefill = false;
        else if (r.gen.empty() || opts_.prefillChunk == 0)
            do_prefill = true; // monolithic keeps the prefill-first order
        else
            do_prefill = r.prefillSinceGen < opts_.prefillChunk;
        if (do_prefill) {
            // Which pending prefill advances: chunking re-consults the
            // policy's urgency at every chunk boundary, so an urgent
            // late arrival never sits behind the whole of an earlier
            // joiner's summarization (token-boundary scheduling of the
            // prefill queue). Monolithic — and FCFS, whose urgency is
            // arrival order — keep the admission order.
            std::size_t pi = 0;
            if (opts_.prefillChunk > 0 && r.prefill.size() > 1) {
                SchedulerContext pctx;
                pctx.nowMs = now;
                pctx.sloMsPerToken = opts_.sloMsPerToken;
                pctx.replicaFreeAtMs = freeAt;
                double best = 0.0;
                for (std::size_t i = 0; i < r.prefill.size(); ++i) {
                    double key =
                        policy_->urgency(asQueued(r.prefill[i]), pctx);
                    if (i == 0 || key < best) {
                        best = key;
                        pi = i;
                    }
                }
            }
            Member &m = r.prefill[pi];
            const std::uint64_t input = m.res.request.inputTokens;
            // Encoders never chunk: bidirectional attention has no
            // causal resume point.
            const std::uint64_t cap =
                (opts_.prefillChunk > 0 && replicas_[d]->model().decoder())
                    ? opts_.prefillChunk
                    : input;
            const std::uint64_t c = std::min(cap, input - m.prefillDone);
            const bool last = m.prefillDone + c == input;
            const RunStats &s =
                replicas_[d]->prefillChunkStats(m.prefillDone, c, last);
            dur = s.wallMs();
            // The prefill is exclusively this request's work: attribute
            // it whole (assignment on the first chunk keeps the
            // monolithic path bit-identical to the pre-chunking loop).
            // The chunk counter, not prefillDone, detects the first
            // chunk: a prefix-cache hit starts prefillDone at the
            // cached prefix, and its first delta chunk must still
            // *assign* (the two tests coincide on every cold path).
            if (m.chunksDone == 0) {
                m.res.report.summarization = s;
                m.res.prefillChunks = 1;
            } else {
                m.res.report.summarization.merge(s);
                m.res.prefillChunks += 1;
            }
            m.chunksDone += 1;
            m.prefillDone += c;
            r.prefillSinceGen += c;
            if (kvOn)
                // The chunk writes its slice of prompt KV (the last
                // chunk's LM head adds the bootstrap token; encoders'
                // reservations clamp it away). A disaggregated hit's
                // prefix (kvBase tokens) lives at the handoff target,
                // not here — only the delta counts locally.
                kvm[d].setUsed(m.res.id,
                               (last ? input + 1 : m.prefillDone) -
                                   m.kvBase);
            if (last) {
                // TTFT counts queueing, any batch stall or interleaved
                // generation segments, and the prefill itself — the
                // last chunk's LM head emits the first token.
                m.res.firstTokenMs = (now + dur) - m.res.arrivalMs;
                m.kvLen = input + 1;
                m.remaining = replicas_[d]->model().decoder()
                                  ? m.res.request.outputTokens - 1
                                  : 0;
                if (m.handoff)
                    // Decode runs elsewhere: the member waits in the
                    // outbox until this segment completes (its KV is
                    // fully written only then), then rides the link.
                    r.outbox.push_back(std::move(m));
                else
                    r.gen.push_back(std::move(m));
                r.prefill.erase(r.prefill.begin() +
                                static_cast<std::ptrdiff_t>(pi));
            }
        } else {
            r.prefillSinceGen = 0;
            // Generation segment: every member advances g tokens
            // together, g capped by the stride (the join/leave
            // granularity) and by the member closest to finishing.
            r.sealed = true; // static batches freeze at first token
            std::uint64_t g = opts_.tokenStride;
            std::vector<std::uint64_t> &kv = kvLens;
            kv.clear();
            kv.reserve(r.gen.size());
            for (const Member &m : r.gen) {
                g = std::min<std::uint64_t>(g, m.remaining);
                kv.push_back(m.kvLen);
            }
            const RunStats first = replicas_[d]->generationStepStats(kv);
            RunStats seg;
            if (g == 1) {
                seg = first;
            } else {
                // Trapezoid over the segment: cost g steps from the
                // entry and exit samples (KV lengths all advance
                // together, so only those two entries differ). The
                // exit sample sits at kv + g — the next segment's
                // entry — so back-to-back segments with unchanged
                // membership share cache entries, like the legacy
                // strided run() shares its sample points.
                for (std::uint64_t &v : kv)
                    v += g;
                const RunStats exit_ =
                    replicas_[d]->generationStepStats(kv);
                seg.scaleAdd(first, static_cast<double>(g) / 2.0);
                seg.scaleAdd(exit_, static_cast<double>(g) / 2.0);
            }
            dur = seg.wallMs();
            // Each member owes a 1/B share of the shared step work.
            double share = 1.0 / static_cast<double>(r.gen.size());
            for (Member &m : r.gen) {
                m.res.report.generation.scaleAdd(seg, share);
                m.res.report.generationSteps += g;
                m.kvLen += g;
                m.remaining -= g;
                m.weightedBatch += static_cast<double>(
                    g * r.gen.size());
                m.doneSteps += g;
                if (kvOn)
                    kvm[d].setUsed(m.res.id, m.kvLen);
            }
        }

        if (kvOn) {
            // KV written beyond capacity lives in host memory: the
            // spilled fraction of this segment's KV traffic moves at
            // PCIe instead of DRAM bandwidth, dilating its wall time.
            // Exactly 1.0 (and no branch taken) while within capacity,
            // so queue/shed admission never pays it.
            const double dil = kvm[d].dilation();
            if (dil > 1.0) {
                dur *= dil;
                report.kvSpilledSegments += 1;
                report.kvMaxDilation =
                    std::max(report.kvMaxDilation, dil);
            }
        }

        double end = now + dur;
        busy[d] = true;
        freeAt[d] = end;
        report.replicas[d].busyMs += dur;
        events.schedule(msToTicks(end), [&, d, end]() {
            busy[d] = false;
            ReplicaRun &rr = rt[d];
            for (auto it = rr.gen.begin(); it != rr.gen.end();) {
                if (it->remaining == 0) {
                    finalize(*it, end, d);
                    it = rr.gen.erase(it);
                } else {
                    ++it;
                }
            }
            if (rr.gen.empty() && rr.prefill.empty())
                rr.sealed = false; // drained: the next batch may form
            if (disaggOn)
                // Handoffs launch before the follow-up pump below is
                // scheduled, so a zero-cost transfer's arrival (same
                // tick, FIFO) lands ahead of it and the target's
                // admission pass sees the member already inbound.
                while (!rr.outbox.empty()) {
                    Member hm = std::move(rr.outbox.front());
                    rr.outbox.pop_front();
                    startHandoff(std::move(hm), d, end);
                }
            // Admissions run in a same-tick follow-up event so every
            // replica whose boundary lands on this tick is free first —
            // otherwise the earliest boundary would greedily claim the
            // whole queue while its peers are still marked busy.
            events.schedule(events.now(), [&, end]() { pump(end); });
        });
    };

    // One candidate's dispatch attempt — the body shared by the three
    // admission disciplines below. Launched: the request took a batch
    // slot (legacy whole-request service, resume, or batched
    // admission). Consumed: it left the queue without dispatching
    // (shed admission). Blocked: it stays queued (bound replica full,
    // or KV admission holds it).
    enum class Attempt : std::uint8_t { Launched, Consumed, Blocked };
    auto dispatchOne = [&](const QueuedRequest &q,
                           double now) -> Attempt {
        std::size_t dev = 0;
        if (q.resumed) {
            // KV affinity: a preempted request resumes only on
            // the replica holding its cache. A full bound
            // replica skips the candidate without consuming a
            // slot — later candidates may still dispatch.
            dev = q.boundReplica;
            if (capacity(dev) == 0)
                return Attempt::Blocked;
            // Resume only when the parked request's worst-case
            // headroom fits the pool again (queue/shed modes;
            // `none` overcommits and spills instead). An evictee's
            // return outranks cached prefixes: reclaim this replica's
            // pins oldest-first until it fits.
            if (kvOn && !kvm[dev].canResume(q.id)) {
                // Oldest-first, skipping pins an in-flight handoff has
                // claimed (identical to a plain front-first scan when
                // no pin is claimed — the non-disaggregated case).
                std::size_t pi = 0;
                while (prefixOn && pi < pins[dev].size() &&
                       !kvm[dev].canResume(q.id)) {
                    if (claimedPins.count(pins[dev][pi])) {
                        ++pi;
                        continue;
                    }
                    unpin(pins[dev][pi]);
                }
                if (!kvm[dev].canResume(q.id))
                    return Attempt::Blocked;
            }
        } else {
                    // The router contract, enforced here where drain()
                    // consumes the route (the selectBatch twin above):
                    // the router is called only when some replica
                    // accepts, with a status vector carrying the load
                    // signals (resident / pendingPrefill / kvTokens /
                    // backlogTokens / suspendedKv) for every replica
                    // and — only when the router declares
                    // needsEstimates() — the candidate's service-time
                    // estimates on each replica's own device model. It
                    // must return an in-range, accepting replica;
                    // anything else is fatal. Resumed requests never
                    // reach it (pinned to their KV-holding replica
                    // above).
                    const std::size_t hitDev = sessionHitDev(q);
                    const bool est = router_->needsEstimates();
                    bool any_accepting = false;
                    auto fillStatuses = [&] {
                        statuses.assign(n, ReplicaStatus{});
                        any_accepting = false;
                        for (std::size_t d = 0; d < n; ++d) {
                            statuses[d].index = d;
                            // A kv-blocked replica is not accepting for
                            // this candidate (queue/shed modes; `none`
                            // never blocks), so the router only ever
                            // sees placements the block pool can honor.
                            // Decode-role replicas take work over the
                            // KV link, never fresh admissions.
                            statuses[d].idle =
                                capacity(d) > 0 && !kvBlocked(q, d) &&
                                !(disaggOn &&
                                  roles[d] == ReplicaRole::Decode);
                            any_accepting |= statuses[d].idle;
                            statuses[d].freeAtMs = freeAt[d];
                            statuses[d].busyMs =
                                report.replicas[d].busyMs;
                            statuses[d].dispatched =
                                report.replicas[d].dispatched;
                            statuses[d].resident =
                                rt[d].prefill.size() + rt[d].gen.size();
                            statuses[d].pendingPrefill =
                                rt[d].prefill.size();
                            for (const Member &m : rt[d].gen) {
                                statuses[d].kvTokens += m.kvLen;
                                statuses[d].backlogTokens += m.remaining;
                            }
                            statuses[d].suspendedKv = parked[d];
                            statuses[d].pinnedSessions = pins[d].size();
                            if (kvOn) {
                                statuses[d].kvFreeBlocks =
                                    kvm[d].freeBlocks();
                                statuses[d].kvPressure =
                                    kvm[d].pressure();
                            }
                            if (est) {
                                statuses[d].estStepMs =
                                    replicas_[d]->estimatedStepMs();
                                // The hit replica re-prefills only the
                                // delta; pricing that into its estimate
                                // is the re-prefill penalty every
                                // predicted-finish router weighs. A
                                // disaggregated hit prices the delta on
                                // the prefill replica the same way.
                                statuses[d].estPrefillMs =
                                    (hitDev == d ||
                                     disaggHitPrefix(d, q) > 0)
                                        ? replicas_[d]
                                              ->estimateResumePrefillMs(
                                                  q.prefixTokens,
                                                  q.request.inputTokens -
                                                      q.prefixTokens)
                                        : replicas_[d]->estimatePrefillMs(
                                              q.request.inputTokens);
                                statuses[d].estGenMs =
                                    replicas_[d]->estimateGenerationMs(
                                        q.request);
                            }
                        }
                    };
                    fillStatuses();
                    if (!any_accepting && prefixOn && kvOn) {
                        // Pinned prefixes are a cache, not a promise:
                        // with every replica KV-blocked for this
                        // candidate, reclaim pins oldest-first (lowest
                        // replica index first) until one replica can
                        // take it. The candidate's own pin is never
                        // dropped here — its replica already prices
                        // that release via releaseWouldAdmit, and
                        // dropping it would forfeit the hit.
                        auto reclaimOne = [&](std::size_t d) {
                            for (std::uint64_t sid : pins[d]) {
                                if (sid == q.sessionId ||
                                    claimedPins.count(sid))
                                    continue;
                                unpin(sid);
                                return true;
                            }
                            return false;
                        };
                        bool freed = false;
                        for (std::size_t d = 0; d < n; ++d) {
                            if (capacity(d) == 0 ||
                                (disaggOn &&
                                 roles[d] == ReplicaRole::Decode))
                                continue;
                            while (kvBlocked(q, d) && reclaimOne(d))
                                freed = true;
                            if (!kvBlocked(q, d))
                                break; // one accepting replica suffices
                        }
                        if (freed)
                            fillStatuses();
                    }
                    if (!any_accepting) {
                        // A disaggregated pool can land here with only
                        // decode-side slots open (totalSlots counts
                        // them for a parked evictee): a fresh candidate
                        // simply has nowhere to go, and admission
                        // control below must not run — shed would drop
                        // it for want of a slot, not of KV blocks, and
                        // the block pools may be off entirely.
                        bool slot_somewhere = false;
                        for (std::size_t d = 0; d < n; ++d)
                            if (capacity(d) > 0 &&
                                !(disaggOn &&
                                  roles[d] == ReplicaRole::Decode))
                                slot_somewhere = true;
                        if (!slot_somewhere)
                            return Attempt::Blocked;
                        // Some replica has an open slot (the admission
                        // loop's slots check) but every one is
                        // KV-blocked for this candidate: admission
                        // control takes over before the router runs.
                        if (opts_.kv.admission == KvAdmission::Shed) {
                            report.kvShed += 1;
                            return Attempt::Consumed;
                        }
                        // Queue: hold it in the ready queue until
                        // blocks free — fatal if no replica could fit
                        // it even empty (it would wait forever).
                        bool ever = false;
                        for (std::size_t d = 0; d < n; ++d)
                            ever |= kvm[d].canEverAdmit(
                                admitKvTokens(d, q));
                        if (!ever)
                            IANUS_FATAL(
                                "request ", q.id, " needs ",
                                maxKvTokens(0, q),
                                " KV tokens, more than any replica's "
                                "capacity; it can never dispatch under "
                                "queue admission");
                        return Attempt::Blocked;
                    }
                    if (hitDev != QueuedRequest::noReplica) {
                        // Session-sticky routers read the hit replica
                        // off the candidate; a copy keeps the queued
                        // entry itself untouched (the hit may be gone
                        // by the next attempt).
                        QueuedRequest qc = q;
                        qc.sessionHitReplica = hitDev;
                        dev = router_->route(qc, statuses, now);
                    } else {
                        dev = router_->route(q, statuses, now);
                    }
                    if (dev >= n)
                        IANUS_FATAL("router '", router_->name(),
                                    "' returned out-of-range replica ",
                                    dev, " (pool has ", n, ")");
                    if (capacity(dev) == 0)
                        IANUS_FATAL("router '", router_->name(),
                                    "' routed to busy replica ", dev);
                    if (kvBlocked(q, dev))
                        IANUS_FATAL("router '", router_->name(),
                                    "' routed to KV-blocked replica ",
                                    dev);
                }

                if (!segmented) {
                    // Legacy whole-request service: the request holds
                    // its replica to completion, costed by the same
                    // CompiledModel::run the synchronous loop used.
                    RequestResult res;
                    res.id = q.id;
                    res.request = q.request;
                    res.arrivalMs = q.arrivalMs;
                    res.sessionId = q.sessionId;
                    res.turnIndex = q.turnIndex;
                    res.prefixTokens = q.prefixTokens;
                    res.source = q.source;
                    res.prefilledTokens = q.request.inputTokens;
                    res.startMs = std::max(now, q.arrivalMs);
                    res.report =
                        replicas_[dev]->run(q.request, opts_.tokenStride);
                    res.serviceMs = res.report.totalMs();
                    res.finishMs = res.startMs + res.serviceMs;
                    res.firstTokenMs = (res.startMs - res.arrivalMs) +
                                       res.report.summarizationMs();
                    res.msPerToken = res.report.msPerGeneratedToken();
                    res.sloMiss = res.report.generationSteps > 0 &&
                                  res.msPerToken > opts_.sloMsPerToken;
                    res.deadlineMiss =
                        res.finishMs > deadlineMs(res.arrivalMs,
                                                  res.request,
                                                  opts_.sloMsPerToken);
                    res.deviceIndex = dev;
                    res.prefillIndex = dev;

                    busy[dev] = true;
                    freeAt[dev] = res.finishMs;
                    report.replicas[dev].dispatched += 1;
                    report.replicas[dev].busyMs += res.serviceMs;

                    // Hoisted: argument evaluation is unsequenced, so
                    // the move-capture below must not race the finishMs
                    // read.
                    Tick completion = msToTicks(res.finishMs);
                    events.schedule(
                        completion,
                        [&, dev, res = std::move(res)]() mutable {
                            busy[dev] = false;
                            double finish = res.finishMs;
                            report.generatedTokens +=
                                res.request.outputTokens;
                            report.aggregate.merge(res.report.combined());
                            report.makespanMs =
                                std::max(report.makespanMs,
                                         finish - first_arrival);
                            report.results.push_back(std::move(res));
                            if (onComplete_)
                                onComplete_(report.results.back());
                            pump(finish);
                        });
                } else if (q.resumed) {
                    // Resume: the evicted member rejoins generation on
                    // its bound replica at the KV length reached — the
                    // prefill is never re-run (KV retained on-replica).
                    auto sit = suspended.find(q.id);
                    if (sit == suspended.end())
                        IANUS_FATAL("resumed request ", q.id,
                                    " has no suspended state");
                    Member m = std::move(sit->second);
                    suspended.erase(sit);
                    m.res.suspendedMs += now - m.evictedAtMs;
                    if (kvOn)
                        kvm[dev].resume(q.id); // re-reserve headroom
                    rt[dev].gen.push_back(std::move(m));
                    parked[dev] -= 1; // its KV is resident again
                    // A re-dispatch is a dispatch event: a preempted
                    // request counts once per admission.
                    report.replicas[dev].dispatched += 1;
                } else {
                    // Batched admission: the request joins the routed
                    // replica's batch and waits for a prefill segment.
                    Member m;
                    m.res.id = q.id;
                    m.res.request = q.request;
                    m.res.arrivalMs = q.arrivalMs;
                    m.res.sessionId = q.sessionId;
                    m.res.turnIndex = q.turnIndex;
                    m.res.prefixTokens = q.prefixTokens;
                    m.res.source = q.source;
                    m.res.startMs = std::max(now, q.arrivalMs);
                    m.res.deviceIndex = dev;
                    m.res.report.inputTokens = q.request.inputTokens;
                    m.res.report.outputTokens = q.request.outputTokens;
                    const bool hit =
                        prefixOn && sessionHitDev(q) == dev;
                    const std::uint64_t dhp =
                        hit ? 0 : disaggHitPrefix(dev, q);
                    if (hit) {
                        // Consume the pin before reserving: its
                        // returned blocks fund the admission that
                        // releaseWouldAdmit just priced. The prefix KV
                        // transfers to this turn's charge and only the
                        // delta is prefilled.
                        unpin(q.sessionId);
                        m.prefillDone = q.prefixTokens;
                        m.res.prefixHit = true;
                        report.prefixHits += 1;
                        report.prefillTokensSaved += q.prefixTokens;
                    } else if (dhp > 0) {
                        // Disaggregated hit: the pin lives on a
                        // decode-capable replica and stays put —
                        // claim it for this member's handoff and
                        // prefill only the delta here.
                        claimedPins.insert(q.sessionId);
                        m.prefillDone = q.prefixTokens;
                        m.kvBase = q.prefixTokens;
                        m.res.prefixHit = true;
                        report.prefixHits += 1;
                        report.prefillTokensSaved += q.prefixTokens;
                    } else if (prefixOn && q.sessionId != 0 &&
                               q.turnIndex > 0) {
                        // Honest miss: the full context re-prefills. A
                        // surviving pin (shorter, or on another
                        // replica) is dead weight now — drop it,
                        // unless an in-flight handoff claimed it.
                        auto sit = sessions.find(q.sessionId);
                        if (sit != sessions.end() &&
                            sit->second.cached &&
                            !claimedPins.count(q.sessionId))
                            unpin(q.sessionId);
                        report.prefixMisses += 1;
                    }
                    m.handoff = willHandoff(dev, q);
                    m.res.prefillIndex = dev;
                    m.res.prefilledTokens =
                        q.request.inputTokens - m.prefillDone;
                    if (kvOn) {
                        // Reserve the worst case up front (a handoff
                        // member reserves only its local prompt KV);
                        // `none` admission overcommits here and pays
                        // in spill-dilated segments instead.
                        kvm[dev].admit(q.id, admitKvTokens(dev, q));
                        if (hit)
                            kvm[dev].setUsed(q.id, q.prefixTokens);
                    }
                    rt[dev].prefill.push_back(std::move(m));
                    report.replicas[dev].dispatched += 1;
                }

        return Attempt::Launched;
    };

    // Total open batch slots right now. Every Launched attempt lowers
    // it by exactly one (legacy service marks its replica busy;
    // resume/admission grow the resident count), so the fast paths
    // below can decrement instead of recounting per round.
    auto totalSlots = [&] {
        std::size_t slots = 0;
        for (std::size_t d = 0; d < n; ++d) {
            // A Decode replica's open slots admit nothing from the
            // queue unless one of its own evictees waits to resume —
            // counting them otherwise would spin the admission loops
            // on candidates with nowhere to go.
            if (disaggOn && roles[d] == ReplicaRole::Decode &&
                parked[d] == 0)
                continue;
            slots += capacity(d);
        }
        return slots;
    };

    // Admit as many waiting requests into open batch slots as the
    // policy and router allow, via the discipline the policy declared.
    // A resumed (previously evicted) request bypasses the router — its
    // KV cache lives on one replica — and simply keeps waiting when
    // that replica has no open slot. All three paths reproduce the
    // Dynamic path's dispatch sequence exactly; see
    // docs/PERFORMANCE.md for the equivalence argument.
    auto admit = [&](double now) {
        if (order == QueueOrder::Arrival) {
            // FCFS: strictly in arrival order, head-of-line blocking.
            // A blocked head stops admission (later arrivals must not
            // overtake it); a shed head ends this pass like the
            // Dynamic path's one-batch-per-round exit does.
            if (readyFifo.empty())
                return;
            std::size_t slots = totalSlots();
            while (slots > 0 && !readyFifo.empty()) {
                Attempt a = dispatchOne(readyFifo.front(), now);
                if (a == Attempt::Blocked)
                    break;
                readyFifo.pop_front();
                if (a == Attempt::Consumed)
                    break;
                --slots;
            }
            return;
        }
        if (order == QueueOrder::StaticUrgency) {
            // SJF/EDF: one pass over the urgency-ordered index —
            // exactly the prefix-dispatch the legacy path ran over the
            // freshly stable_sorted queue, without the sort. Blocked
            // candidates stay; consumed ones leave the index.
            if (readyOrdered.empty())
                return;
            std::size_t slots = totalSlots();
            if (slots == 0)
                return;
            std::size_t launched = 0;
            auto it = readyOrdered.begin();
            while (it != readyOrdered.end() && launched < slots) {
                Attempt a = dispatchOne(it->second, now);
                if (a == Attempt::Blocked) {
                    ++it;
                    continue;
                }
                it = readyOrdered.erase(it);
                if (a == Attempt::Launched)
                    ++launched;
            }
            return;
        }

        // Dynamic: the always-correct legacy path — re-consult
        // selectBatch every round and dispatch the returned prefix
        // that fits.
        while (!ready.empty()) {
            std::size_t slots = totalSlots();
            if (slots == 0)
                break;

            SchedulerContext ctx;
            ctx.nowMs = now;
            ctx.sloMsPerToken = opts_.sloMsPerToken;
            ctx.replicaFreeAtMs = freeAt;
            std::vector<std::size_t> batch =
                policy_->selectBatch(ready, ctx);

            // The selectBatch contract, enforced: a policy must return
            // at least one index for a non-empty queue, every index in
            // range and distinct. The engine dispatches the returned
            // prefix that fits into open slots and re-consults at the
            // next boundary.
            if (batch.empty())
                IANUS_FATAL("scheduling policy '", policy_->name(),
                            "' returned an empty batch for a non-empty "
                            "queue of ",
                            ready.size());
            std::vector<char> taken(ready.size(), 0);
            for (std::size_t idx : batch) {
                if (idx >= ready.size())
                    IANUS_FATAL("scheduling policy '", policy_->name(),
                                "' returned out-of-range queue index ",
                                idx, " (queue has ", ready.size(), ")");
                if (taken[idx])
                    IANUS_FATAL("scheduling policy '", policy_->name(),
                                "' returned duplicate queue index ", idx);
                taken[idx] = 1;
            }

            std::size_t launched = 0;
            std::vector<char> consumed(ready.size(), 0);
            for (std::size_t idx : batch) {
                if (launched == slots)
                    break; // rest of the batch waits for a boundary
                Attempt a = dispatchOne(ready[idx], now);
                if (a == Attempt::Blocked)
                    continue;
                consumed[idx] = 1;
                if (a == Attempt::Launched)
                    ++launched;
            }

            std::vector<QueuedRequest> rest;
            rest.reserve(ready.size() - launched);
            for (std::size_t i = 0; i < ready.size(); ++i)
                if (!consumed[i])
                    rest.push_back(std::move(ready[i]));
            ready = std::move(rest);

            if (launched < batch.size())
                break; // open slots exhausted mid-batch
        }
    };

    // The eviction contract, enforced here where a member leaves its
    // batch: preemption strikes only at a token boundary (the replica
    // is between segments), only a *generating* resident is evictable
    // (evicting an un-prefilled member would merely un-admit it; a
    // finished one is already finalized), the victim is the
    // least-urgent resident (ties: the earliest member in the
    // replica's generation order), and it is evicted
    // only for a waiting request with *strictly* lower urgency that
    // can actually land on the freed slot (fresh, or bound to this
    // replica). The evicted member keeps its KV cache on the replica
    // and its partial accounting in `suspended`; what re-runs on
    // resume is nothing — generation continues at kvLen. Urgency keys
    // are static per request (see SchedulingPolicy::urgency), so each
    // eviction strictly lowers the resident urgency multiset and the
    // evict-admit loop below terminates.
    auto tryEvict = [&](double now) -> bool {
        SchedulerContext ctx;
        ctx.nowMs = now;
        ctx.sloMsPerToken = opts_.sloMsPerToken;
        ctx.replicaFreeAtMs = freeAt;
        for (std::size_t d = 0; d < n; ++d) {
            if (busy[d])
                continue; // mid-segment: no token boundary to evict at
            // Eviction needs something it could fix: a full batch
            // (the legacy trigger), or — with the capacity model on —
            // a block-starved candidate whose admission an eviction's
            // parked headroom could unblock.
            const bool slot_full = capacity(d) == 0;
            if (!slot_full && !kvOn)
                continue; // admission can fill the open slot
            const QueuedRequest *cand = nullptr;
            double cand_key = 0.0;
            // With an open slot, only a KV-blocked candidate justifies
            // evicting (anyone else admission would have placed
            // already).
            auto eligible = [&](const QueuedRequest &q) {
                if (q.resumed && q.boundReplica != d)
                    return false;
                // Only a returning evictee justifies evicting on a
                // Decode replica — fresh work cannot land there.
                if (!q.resumed && disaggOn &&
                    roles[d] == ReplicaRole::Decode)
                    return false;
                return slot_full || kvBlocked(q, d);
            };
            if (order == QueueOrder::StaticUrgency) {
                // Ascending (static key, insertion seq): the first
                // eligible entry is the most urgent one, ties resolved
                // to the earliest queued — the same winner the legacy
                // strict-min scan over the arrival-ordered vector
                // found.
                for (const auto &e : readyOrdered) {
                    if (eligible(e.second)) {
                        cand = &e.second;
                        cand_key = e.first.first;
                        break;
                    }
                }
            } else {
                auto scan = [&](const QueuedRequest &q) {
                    if (!eligible(q))
                        return;
                    double key = policy_->urgency(q, ctx);
                    if (!cand || key < cand_key) {
                        cand = &q;
                        cand_key = key;
                    }
                };
                for (const QueuedRequest &q : ready)
                    scan(q);
                for (const QueuedRequest &q : readyFifo)
                    scan(q);
            }
            if (!cand)
                continue;
            auto victim = rt[d].gen.end();
            double victim_key = 0.0;
            for (auto it = rt[d].gen.begin(); it != rt[d].gen.end();
                 ++it) {
                if (it->remaining == 0)
                    continue;
                double key = policy_->urgency(asQueued(*it), ctx);
                if (victim == rt[d].gen.end() || key > victim_key) {
                    victim = it;
                    victim_key = key;
                }
            }
            if (victim == rt[d].gen.end() || !(cand_key < victim_key))
                continue;
            // An eviction that cannot unblock its beneficiary is pure
            // churn (the evictee would bounce straight back): parking
            // must free enough headroom for the candidate to take the
            // place. Always passes with the capacity model off or
            // under `none` admission.
            if (kvOn &&
                !(cand->resumed
                      ? kvm[d].parkWouldResume(victim->res.id, cand->id)
                      : kvm[d].parkWouldAdmit(victim->res.id,
                                              maxKvTokens(d, *cand))))
                continue;

            Member m = std::move(*victim);
            rt[d].gen.erase(victim);
            m.res.preemptions += 1;
            m.evictedAtMs = now;
            if (kvOn)
                // Park under the PR-4 contract: the written KV stays
                // charged on this replica, the worst-case headroom
                // returns to the pool.
                kvm[d].park(m.res.id);
            QueuedRequest rq;
            rq.id = m.res.id;
            rq.request = m.res.request;
            rq.arrivalMs = m.res.arrivalMs;
            rq.resumed = true;
            rq.boundReplica = d;
            rq.kvTokens = m.kvLen;
            rq.remainingTokens = m.remaining;
            suspended.emplace(rq.id, std::move(m));
            readyPush(rq);
            return true;
        }
        return false;
    };

    // Admissions, then (with preemption on) alternate evict/admit
    // rounds until no urgency inversion remains, then start segments on
    // every replica at a boundary with work. Re-entered at every
    // arrival, completion, and segment boundary. The eviction budget is
    // a backstop for policies whose selectBatch order contradicts their
    // urgency key; for the shipped policies the two agree and the
    // static-key argument already bounds the loop.
    pump = [&](double now) {
        if (disaggOn) {
            // Transfers first: a retried handoff may land (or a
            // zero-cost one already has), and arrived members join
            // their target's decode batch at this token boundary
            // ahead of fresh admissions.
            retryHandoffs(now);
            for (std::size_t d = 0; d < n; ++d)
                while (!inbound[d].empty() && capacity(d) > 0) {
                    rt[d].gen.push_back(std::move(inbound[d].front()));
                    inbound[d].pop_front();
                }
        }
        admit(now);
        if (opts_.preempt) {
            std::size_t evict_budget = 0;
            for (std::size_t d = 0; d < n; ++d)
                evict_budget += rt[d].gen.size();
            while (evict_budget > 0 && !readyEmpty() && tryEvict(now)) {
                --evict_budget;
                admit(now);
            }
        }
        if (segmented)
            for (std::size_t d = 0; d < n; ++d)
                if (!busy[d] &&
                    (!rt[d].prefill.empty() || !rt[d].gen.empty()))
                    startSegment(d, now);
    };

    // Mid-drain arrivals (closed-loop feedback): a completion hook's
    // inject() schedules a fresh arrival event into the running loop.
    // Injected at the completing tick or later, it can never land in
    // the past; run() keeps going until injected arrivals drain too.
    // Tie semantics differ from submit() by design: pre-drain arrivals
    // at one tick are grouped into a single burst (below), but each
    // injection is its own event, delivered in completion order — the
    // order the live clients actually acted in. Replaying a saved
    // realized trace therefore groups same-instant arrivals the live
    // session delivered one by one; both runs are deterministic, but
    // exact-tie scheduling may differ between them.
    // The guard clears the injector on *every* exit — the lambda
    // captures this drain's locals, and a throwing drain (say, a
    // malformed policy batch) must not leave a dangling injector that
    // a later inject() call would invoke.
    struct InjectorGuard
    {
        ServingEngine *engine;
        ~InjectorGuard() { engine->injector_ = nullptr; }
    } injector_guard{this};
    injector_ = [&](const workloads::InferenceRequest &request,
                    double arrival_ms,
                    std::uint32_t source) -> std::uint64_t {
        if (request.inputTokens == 0)
            IANUS_FATAL("inference request needs at least one input "
                        "token");
        if (request.outputTokens == 0)
            IANUS_FATAL("inference request needs at least one output "
                        "token");
        if (!std::isfinite(arrival_ms) || arrival_ms < 0.0)
            IANUS_FATAL("injected arrival must be a finite non-negative "
                        "time in ms, got ",
                        arrival_ms);
        Tick when = msToTicks(arrival_ms);
        if (when < events.now())
            IANUS_FATAL("injected arrival at ", arrival_ms,
                        " ms is in the drain's past");
        QueuedRequest q;
        q.id = nextId_++;
        q.request = request;
        q.arrivalMs = arrival_ms;
        q.source = source;
        events.schedule(when, [&, q]() {
            readyPush(q);
            pump(q.arrivalMs);
        });
        return q.id;
    };

    // One arrival event per distinct arrival tick: simultaneous
    // arrivals enter the queue together, so a reordering policy sees
    // the whole burst before the first dispatch. Bursts are scheduled
    // lazily — each burst's handler schedules the next — so the event
    // heap holds one pending arrival instead of every future one (a
    // million-request drain used to pay its full heap depth on every
    // push). Early-phase scheduling keeps each burst firing before any
    // completion at the same tick, exactly as the old
    // everything-up-front scheduling order (arrival ids lowest) did;
    // injected arrivals stay normal-phase, preserving their documented
    // completion-order tie semantics.
    std::size_t nextArrival = 0;
    std::function<void()> scheduleNextBurst = [&]() {
        if (nextArrival >= queue_.size())
            return;
        const std::size_t i = nextArrival;
        const Tick when = msToTicks(queue_[i].arrivalMs);
        std::size_t j = i + 1;
        while (j < queue_.size() && msToTicks(queue_[j].arrivalMs) == when)
            ++j;
        nextArrival = j;
        events.scheduleEarly(when, [&, i, j]() {
            for (std::size_t k = i; k < j; ++k)
                readyPush(queue_[k]);
            scheduleNextBurst();
            pump(queue_[i].arrivalMs);
        });
    };
    scheduleNextBurst();
    events.run();
    report.simEvents = events.executed();
    queue_.clear();

    // Pins surviving the drain — prefixes whose next turn never
    // dispatched (trace tail, or sheds) — are cache, not leaks:
    // release them before the audit below counts leftovers.
    if (prefixOn)
        for (std::size_t d = 0; d < n; ++d)
            while (!pins[d].empty())
                unpin(pins[d].front());

    for (ReplicaUtilization &r : report.replicas) {
        r.idleMs = std::max(0.0, report.makespanMs - r.busyMs);
        r.utilization =
            report.makespanMs > 0.0 ? r.busyMs / report.makespanMs : 0.0;
    }

    // KV accounting audit: a fully drained engine holds no resident,
    // pending, or parked KV anywhere — anything left is a leaked cache
    // on some completion/eviction path (the invariant sweep asserts
    // both fields are zero). The engine-view count works with the
    // capacity model off too.
    for (std::size_t d = 0; d < n; ++d) {
        for (const Member &m : rt[d].prefill)
            report.replicas[d].kvTokensEnd += m.prefillDone;
        for (const Member &m : rt[d].gen)
            report.replicas[d].kvTokensEnd += m.kvLen;
    }
    for (const auto &entry : suspended)
        report.replicas[entry.second.res.deviceIndex].kvTokensEnd +=
            entry.second.kvLen;
    if (disaggOn) {
        // Handoff limbo is still KV somewhere: an unshipped outbox or
        // pending transfer charges its source, an arrived-but-unjoined
        // member its target.
        for (std::size_t d = 0; d < n; ++d) {
            for (const Member &m : rt[d].outbox)
                report.replicas[d].kvTokensEnd += m.kvLen;
            for (const Member &m : inbound[d])
                report.replicas[d].kvTokensEnd += m.kvLen;
        }
        for (const Handoff &h : pendingHandoff)
            report.replicas[h.from].kvTokensEnd += h.m.kvLen;
    }
    if (kvOn) {
        std::uint64_t waste = 0;
        std::uint64_t gross = 0;
        for (std::size_t d = 0; d < n; ++d) {
            const std::int64_t leaked =
                static_cast<std::int64_t>(kvm[d].totalBlocks()) -
                kvm[d].freeBlocks();
            report.replicas[d].kvBlocksLeaked =
                leaked > 0 ? static_cast<std::uint64_t>(leaked) : 0;
            report.replicas[d].kvTokensEnd += kvm[d].residentTokens();
            report.kvPeakPressure =
                std::max(report.kvPeakPressure, kvm[d].peakPressure());
            waste += kvm[d].fragWasteTokens();
            gross += kvm[d].fragGrossTokens();
        }
        report.kvFragWasteTokens = waste;
        report.kvFragGrossTokens = gross;
        report.kvMeanFragmentation =
            gross > 0 ? static_cast<double>(waste) /
                            static_cast<double>(gross)
                      : 0.0;
    }

    // The queue is empty: the next submit cycle starts a fresh clock.
    lastArrivalMs_ = 0.0;
    return report;
}

} // namespace ianus::serve
