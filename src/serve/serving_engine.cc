#include "serve/serving_engine.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace ianus::serve
{

std::vector<std::size_t>
FcfsPolicy::selectBatch(const std::vector<QueuedRequest> &queue,
                        double now_ms)
{
    (void)queue;
    (void)now_ms;
    return {0};
}

double
ServingReport::percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (p <= 0.0)
        return values.front();
    if (p >= 100.0)
        return values.back();
    double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] + frac * (values[lo + 1] - values[lo]);
}

double
ServingReport::latencyPercentile(double p) const
{
    std::vector<double> v;
    v.reserve(results.size());
    for (const RequestResult &r : results)
        v.push_back(r.totalMs());
    return percentile(std::move(v), p);
}

double
ServingReport::ttftPercentile(double p) const
{
    std::vector<double> v;
    v.reserve(results.size());
    for (const RequestResult &r : results)
        v.push_back(r.firstTokenMs);
    return percentile(std::move(v), p);
}

double
ServingReport::tokensPerSecond() const
{
    return makespanMs > 0.0
               ? static_cast<double>(generatedTokens) /
                     (makespanMs / 1000.0)
               : 0.0;
}

double
ServingReport::sloMissRate() const
{
    if (results.empty())
        return 0.0;
    std::size_t misses = 0;
    for (const RequestResult &r : results)
        misses += r.sloMiss ? 1 : 0;
    return static_cast<double>(misses) /
           static_cast<double>(results.size());
}

std::string
ServingReport::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%zu requests | %llu tokens | %.1f ms makespan | "
                  "%.1f tok/s | latency p50/p95/p99 %.1f/%.1f/%.1f ms | "
                  "SLO(<%.0f ms/token) miss rate %.1f%%",
                  requests(), (unsigned long long)generatedTokens,
                  makespanMs, tokensPerSecond(), latencyPercentile(50),
                  latencyPercentile(95), latencyPercentile(99),
                  sloMsPerToken, 100.0 * sloMissRate());
    return buf;
}

ServingEngine::ServingEngine(const CompiledModel &model,
                             ServingOptions opts,
                             std::unique_ptr<SchedulingPolicy> policy)
    : model_(model), opts_(opts), policy_(std::move(policy))
{
    if (!policy_)
        policy_ = std::make_unique<FcfsPolicy>();
    if (opts_.tokenStride == 0)
        IANUS_FATAL("token stride must be positive (1 = exact)");
    if (opts_.sloMsPerToken <= 0.0)
        IANUS_FATAL("SLO must be a positive per-token latency in ms");
}

std::uint64_t
ServingEngine::submit(const workloads::InferenceRequest &request,
                      double arrival_ms)
{
    if (request.inputTokens == 0)
        IANUS_FATAL("inference request needs at least one input token");
    if (request.outputTokens == 0)
        IANUS_FATAL("inference request needs at least one output token");
    if (arrival_ms < lastArrivalMs_)
        IANUS_FATAL("request arrivals must be non-decreasing (got ",
                    arrival_ms, " ms after ", lastArrivalMs_, " ms)");
    lastArrivalMs_ = arrival_ms;
    QueuedRequest q;
    q.id = nextId_++;
    q.request = request;
    q.arrivalMs = arrival_ms;
    queue_.push_back(q);
    return q.id;
}

ServingReport
ServingEngine::drain()
{
    ServingReport report;
    report.policy = policy_->name();
    report.sloMsPerToken = opts_.sloMsPerToken;

    double first_arrival = queue_.empty() ? 0.0 : queue_.front().arrivalMs;
    double now = first_arrival;

    while (!queue_.empty()) {
        std::vector<std::size_t> batch =
            policy_->selectBatch(queue_, now);
        IANUS_ASSERT(!batch.empty(),
                     "scheduling policy returned an empty batch");

        // Run the selected requests back to back (batch-1 device),
        // then remove them from the queue in one pass.
        std::vector<bool> taken(queue_.size(), false);
        for (std::size_t idx : batch) {
            IANUS_ASSERT(idx < queue_.size() && !taken[idx],
                         "scheduling policy returned invalid index ",
                         idx);
            taken[idx] = true;

            const QueuedRequest &q = queue_[idx];
            RequestResult res;
            res.id = q.id;
            res.request = q.request;
            res.arrivalMs = q.arrivalMs;
            res.startMs = std::max(now, q.arrivalMs);
            res.report = model_.run(q.request, opts_.tokenStride);
            res.serviceMs = res.report.totalMs();
            res.finishMs = res.startMs + res.serviceMs;
            res.firstTokenMs = (res.startMs - res.arrivalMs) +
                               res.report.summarizationMs();
            res.msPerToken = res.report.msPerGeneratedToken();
            res.sloMiss = res.report.generationSteps > 0 &&
                          res.msPerToken > opts_.sloMsPerToken;

            now = res.finishMs;
            report.generatedTokens += q.request.outputTokens;
            report.aggregate.merge(res.report.combined());
            report.makespanMs =
                std::max(report.makespanMs, res.finishMs - first_arrival);
            report.results.push_back(std::move(res));
        }

        std::vector<QueuedRequest> rest;
        rest.reserve(queue_.size() - batch.size());
        for (std::size_t i = 0; i < queue_.size(); ++i)
            if (!taken[i])
                rest.push_back(queue_[i]);
        queue_ = std::move(rest);
    }
    // The queue is empty: the next submit cycle starts a fresh clock.
    lastArrivalMs_ = 0.0;
    return report;
}

} // namespace ianus::serve
