#include "serve/device_pool.hh"

#include "common/logging.hh"

namespace ianus::serve
{

DevicePool::DevicePool(const SystemConfig &sys,
                       const workloads::ModelConfig &model,
                       PoolOptions opts)
{
    if (opts.replicas == 0)
        IANUS_FATAL("a device pool needs at least one replica");
    replicas_.reserve(opts.replicas);
    for (std::size_t i = 0; i < opts.replicas; ++i)
        replicas_.push_back(
            std::make_unique<CompiledModel>(sys, model, opts.build));
}

void
DevicePool::addReplica(std::unique_ptr<CompiledModel> replica)
{
    if (!replica)
        IANUS_FATAL("cannot add a null replica to a device pool");
    replicas_.push_back(std::move(replica));
}

const CompiledModel &
DevicePool::replica(std::size_t i) const
{
    if (i >= replicas_.size())
        IANUS_FATAL("replica index ", i, " out of range (pool has ",
                    replicas_.size(), ")");
    return *replicas_[i];
}

unsigned
DevicePool::totalDevices() const
{
    unsigned total = 0;
    for (const auto &r : replicas_)
        total += r->options().devices;
    return total;
}

} // namespace ianus::serve
