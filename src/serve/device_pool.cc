#include "serve/device_pool.hh"

#include "common/logging.hh"

namespace ianus::serve
{

const char *
toString(ReplicaRole role)
{
    switch (role) {
    case ReplicaRole::Unified:
        return "unified";
    case ReplicaRole::Prefill:
        return "prefill";
    case ReplicaRole::Decode:
        return "decode";
    }
    return "?";
}

ReplicaRole
makeReplicaRole(const std::string &name)
{
    if (name == "unified")
        return ReplicaRole::Unified;
    if (name == "prefill")
        return ReplicaRole::Prefill;
    if (name == "decode")
        return ReplicaRole::Decode;
    IANUS_FATAL("unknown replica role '", name,
                "' (expected unified, prefill, or decode)");
}

DevicePool::DevicePool(const SystemConfig &sys,
                       const workloads::ModelConfig &model,
                       PoolOptions opts)
{
    if (opts.replicas == 0)
        IANUS_FATAL("a device pool needs at least one replica");
    replicas_.reserve(opts.replicas);
    roles_.reserve(opts.replicas);
    for (std::size_t i = 0; i < opts.replicas; ++i) {
        replicas_.push_back(
            std::make_unique<CompiledModel>(sys, model, opts.build));
        roles_.push_back(ReplicaRole::Unified);
    }
}

void
DevicePool::addReplica(std::unique_ptr<CompiledModel> replica,
                       ReplicaRole role)
{
    if (!replica)
        IANUS_FATAL("cannot add a null replica to a device pool");
    replicas_.push_back(std::move(replica));
    roles_.push_back(role);
}

ReplicaRole
DevicePool::role(std::size_t i) const
{
    if (i >= roles_.size())
        IANUS_FATAL("replica index ", i, " out of range (pool has ",
                    roles_.size(), ")");
    return roles_[i];
}

void
DevicePool::setRole(std::size_t i, ReplicaRole role)
{
    if (i >= roles_.size())
        IANUS_FATAL("replica index ", i, " out of range (pool has ",
                    roles_.size(), ")");
    roles_[i] = role;
}

bool
DevicePool::disaggregated() const
{
    for (ReplicaRole r : roles_)
        if (r != ReplicaRole::Unified)
            return true;
    return false;
}

const CompiledModel &
DevicePool::replica(std::size_t i) const
{
    if (i >= replicas_.size())
        IANUS_FATAL("replica index ", i, " out of range (pool has ",
                    replicas_.size(), ")");
    return *replicas_[i];
}

unsigned
DevicePool::totalDevices() const
{
    unsigned total = 0;
    for (const auto &r : replicas_)
        total += r->options().devices;
    return total;
}

} // namespace ianus::serve
