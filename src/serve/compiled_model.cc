#include "serve/compiled_model.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "ianus/execution_engine.hh"

namespace ianus::serve
{

CompiledModel::CompiledModel(const SystemConfig &sys,
                             const workloads::ModelConfig &model,
                             const compiler::BuildOptions &opts)
    // Validate before the WorkloadBuilder sees the config, so an
    // unsatisfiable configuration fails with a clear error instead of a
    // compiler panic.
    : cfg_((sys.validate(), sys)), model_(model), opts_(opts),
      builder_(cfg_, model_, opts_)
{
}

std::size_t
CompiledModel::cachedPrograms() const
{
    return summarizationCache_.size() + generationCache_.size() +
           batchCache_.size() + chunkCache_.size();
}

void
CompiledModel::clearCache() const
{
    summarizationCache_.clear();
    generationCache_.clear();
    batchCache_.clear();
    batchOrder_.clear();
    chunkCache_.clear();
    cache_ = CacheStats{};
}

RunStats
CompiledModel::execute(const isa::Program &prog) const
{
    ExecutionEngine engine(cfg_, opts_.devices);
    return engine.run(prog);
}

const CompiledModel::Entry &
CompiledModel::summarization(std::uint64_t input_tokens) const
{
    auto it = summarizationCache_.find(input_tokens);
    if (it != summarizationCache_.end()) {
        ++cache_.summarizationHits;
        return it->second;
    }
    Entry entry;
    entry.program = builder_.buildSummarization(input_tokens);
    entry.stats = execute(entry.program);
    ++cache_.summarizationBuilds;
    return summarizationCache_.emplace(input_tokens, std::move(entry))
        .first->second;
}

const CompiledModel::Entry &
CompiledModel::generation(std::uint64_t kv_len) const
{
    auto it = generationCache_.find(kv_len);
    if (it != generationCache_.end()) {
        ++cache_.generationHits;
        return it->second;
    }
    Entry entry;
    entry.program = builder_.buildGenerationToken(kv_len);
    entry.stats = execute(entry.program);
    ++cache_.generationBuilds;
    return generationCache_.emplace(kv_len, std::move(entry))
        .first->second;
}

const RunStats &
CompiledModel::summarizationStats(std::uint64_t input_tokens) const
{
    if (input_tokens == 0)
        IANUS_FATAL("summarization needs at least one input token");
    return summarization(input_tokens).stats;
}

const RunStats &
CompiledModel::prefillChunkStats(std::uint64_t prior_tokens,
                                std::uint64_t chunk_tokens,
                                bool last_chunk) const
{
    if (chunk_tokens == 0)
        IANUS_FATAL("a prefill chunk needs at least one token");
    // A whole-prompt chunk IS the monolithic summarization: share its
    // cache entry so the fallback is structural, not numerical.
    if (prior_tokens == 0 && last_chunk)
        return summarization(chunk_tokens).stats;

    auto key = std::make_tuple(prior_tokens, chunk_tokens, last_chunk);
    auto it = chunkCache_.find(key);
    if (it != chunkCache_.end()) {
        ++cache_.chunkHits;
        return it->second.stats;
    }
    Entry entry;
    entry.program = builder_.buildSummarizationChunk(
        prior_tokens, chunk_tokens, last_chunk);
    entry.stats = execute(entry.program);
    ++cache_.chunkBuilds;
    return chunkCache_.emplace(key, std::move(entry))
        .first->second.stats;
}

RunStats
CompiledModel::generationStepStats(
    std::vector<std::uint64_t> kv_lens) const
{
    if (kv_lens.empty())
        IANUS_FATAL("a generation step needs at least one request");
    for (std::uint64_t kv : kv_lens)
        if (kv == 0)
            IANUS_FATAL("a generation step needs a non-empty KV cache "
                        "for every request");
    // A batch of one is the scalar entry — sharing the cache makes
    // batch-1 equivalence structural rather than numerical.
    if (kv_lens.size() == 1)
        return generation(kv_lens.front()).stats;

    std::sort(kv_lens.begin(), kv_lens.end());
    auto it = batchCache_.find(kv_lens);
    if (it != batchCache_.end()) {
        ++cache_.batchHits;
        return it->second;
    }
    // The program is discarded after execution and the oldest entry
    // evicted beyond the cap: batched keys rarely recur (all KV
    // lengths advance together), so only recent stats are worth the
    // memory. Eviction is deterministic — a re-miss just recomputes
    // the same pure function.
    RunStats stats = execute(builder_.buildGenerationBatch(kv_lens));
    ++cache_.batchBuilds;
    if (batchCache_.size() >= maxBatchEntries) {
        batchCache_.erase(batchOrder_.front());
        batchOrder_.pop_front();
        ++cache_.batchEvictions;
    }
    batchOrder_.push_back(kv_lens);
    batchCache_.emplace(std::move(kv_lens), stats);
    return stats;
}

double
CompiledModel::estimatedStepMs() const
{
    if (!model_.decoder())
        return 0.0;
    return generation(routingProbeKv).stats.wallMs();
}

double
CompiledModel::estimatePrefillMs(std::uint64_t input_tokens) const
{
    return summarizationStats(input_tokens).wallMs();
}

double
CompiledModel::estimateResumePrefillMs(std::uint64_t prior_tokens,
                                       std::uint64_t chunk_tokens) const
{
    return prefillChunkStats(prior_tokens, chunk_tokens, true).wallMs();
}

double
CompiledModel::estimateGenerationMs(
    const workloads::InferenceRequest &request) const
{
    if (request.inputTokens == 0)
        IANUS_FATAL("inference request needs at least one input token");
    if (request.outputTokens == 0)
        IANUS_FATAL("inference request needs at least one output token");
    if (!model_.decoder())
        return 0.0;
    std::uint64_t steps = request.outputTokens - 1;
    if (steps == 0)
        return 0.0;
    std::uint64_t mid_kv = request.inputTokens + 1 + steps / 2;
    return static_cast<double>(steps) * generation(mid_kv).stats.wallMs();
}

double
CompiledModel::estimateServiceMs(
    const workloads::InferenceRequest &request) const
{
    return estimatePrefillMs(request.inputTokens) +
           estimateGenerationMs(request);
}

InferenceReport
CompiledModel::run(const workloads::InferenceRequest &request,
                   unsigned token_stride) const
{
    if (request.inputTokens == 0)
        IANUS_FATAL("inference request needs at least one input token");
    if (request.outputTokens == 0)
        IANUS_FATAL("inference request needs at least one output token "
                    "(encoders emit their single result as token 1)");
    if (token_stride == 0)
        IANUS_FATAL("token stride must be positive (1 = exact)");

    InferenceReport report;
    report.inputTokens = request.inputTokens;
    report.outputTokens = request.outputTokens;

    report.summarization = summarization(request.inputTokens).stats;

    // Encoders have no generation stage at all; for decoders the first
    // output token is produced by the summarization LM head and
    // generation steps produce the rest.
    if (!model_.decoder())
        return report;
    std::uint64_t steps = request.outputTokens - 1;
    report.generationSteps = steps;
    if (steps == 0)
        return report;

    auto step_stats = [&](std::uint64_t t) -> const RunStats & {
        return generation(request.inputTokens + 1 + t).stats;
    };

    if (token_stride == 1 || steps <= 2 * token_stride) {
        for (std::uint64_t t = 0; t < steps; ++t)
            report.generation.merge(step_stats(t));
        return report;
    }

    // Strided sampling with trapezoidal integration: token latency is a
    // smooth function of KV length (only attention terms grow).
    std::vector<std::uint64_t> samples;
    for (std::uint64_t t = 0; t < steps; t += token_stride)
        samples.push_back(t);
    if (samples.back() != steps - 1)
        samples.push_back(steps - 1);

    std::vector<const RunStats *> stats;
    stats.reserve(samples.size());
    for (std::uint64_t t : samples)
        stats.push_back(&step_stats(t));

    for (std::size_t j = 0; j < samples.size(); ++j) {
        double w = 0.0;
        if (j == 0)
            w = static_cast<double>(samples[1] - samples[0]) / 2.0 + 0.5;
        else if (j + 1 == samples.size())
            w = static_cast<double>(samples[j] - samples[j - 1]) / 2.0 +
                0.5;
        else
            w = static_cast<double>(samples[j + 1] - samples[j - 1]) / 2.0;
        report.generation.scaleAdd(*stats[j], w);
    }
    return report;
}

} // namespace ianus::serve
