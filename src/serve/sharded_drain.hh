/**
 * @file
 * Sharded parallel simulation: split one serving drain into S
 * independent sub-cluster drains and merge their reports
 * deterministically.
 *
 * A drain over R replicas partitions into S shards: shard s owns the
 * contiguous replica range [s*R/S, (s+1)*R/S) and every request whose
 * position in the (arrival-sorted) trace is congruent to s mod S — a
 * deterministic routing pre-pass that replaces the global router's
 * replica choice *across* shards while the shard-local router still
 * places each request *within* its shard. Session-tagged traces
 * assign *whole sessions* instead: a session's shard is fixed by the
 * same round-robin counter at its first row (a cross-shard turn could
 * never hit its prefix cache), and a tagless trace reduces exactly to
 * the per-request assignment. Each shard then runs an
 * ordinary ServingEngine::drain on its own event loop, touching only
 * its own replicas' CompiledModels, so shards execute concurrently
 * with no shared mutable state.
 *
 * Determinism contract (tested by test_sharded_drain.cc, specified in
 * docs/PERFORMANCE.md):
 *  - The merged ServingReport is a pure function of the per-shard
 *    reports: running the S shards on 1 thread or N threads produces
 *    bit-identical results, field for field.
 *  - With shards == 1 the merged report is bit-identical to a plain
 *    ServingEngine::drain of the same trace on the same pool.
 *  - With shards > 1 the partition itself (not the execution) changes
 *    which replica serves which request, exactly as documented above —
 *    the simulation of the chosen partition is still exact and
 *    reproducible.
 *
 * Merged results keep completion order *within* each shard and
 * interleave shards by completion tick (ties: lowest shard first), so
 * a single-shard merge is the identity. Request ids and device indices
 * are remapped back to the global trace position and pool index.
 *
 * Closed-loop clients (completion hooks / inject) are inherently
 * cross-shard feedback and are not supported here — use
 * ServingEngine directly for those drains.
 */

#ifndef IANUS_SERVE_SHARDED_DRAIN_HH
#define IANUS_SERVE_SHARDED_DRAIN_HH

#include <functional>
#include <memory>
#include <string>

#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace ianus::serve
{

/** How a sharded drain partitions and executes. */
struct ShardOptions
{
    /** Sub-clusters to split the pool into; must be in
     *  [1, pool.size()]. 1 reproduces ServingEngine::drain bit for
     *  bit. */
    std::size_t shards = 1;

    /** Worker threads running the shards: 0 = one per shard, 1 = run
     *  the shards serially on the calling thread (the reference
     *  execution the parallel one must match bit for bit), k = at
     *  most k concurrent shards. Thread count never affects results. */
    std::size_t threads = 0;
};

/** Fresh per-shard policy / router instances (each shard's engine owns
 *  its own — router state like the round-robin cursor is shard-local
 *  by design). A null factory means the engine default (FCFS /
 *  round-robin). */
using PolicyFactory =
    std::function<std::unique_ptr<SchedulingPolicy>()>;
using RouterFactory = std::function<std::unique_ptr<Router>()>;

/**
 * Drain @p trace over @p pool, split @p shard.shards ways, and merge.
 * The trace must be arrival-sorted (ArrivalTrace's invariant).
 */
ServingReport drainSharded(const DevicePool &pool,
                           const ServingOptions &opts,
                           const ArrivalTrace &trace,
                           const ShardOptions &shard,
                           const PolicyFactory &policy = {},
                           const RouterFactory &router = {});

/** Name-based convenience: policies/routers by makePolicy/makeRouter
 *  names, one fresh instance per shard. */
ServingReport drainSharded(const DevicePool &pool,
                           const ServingOptions &opts,
                           const ArrivalTrace &trace,
                           const ShardOptions &shard,
                           const std::string &policy,
                           const std::string &router);

} // namespace ianus::serve

#endif // IANUS_SERVE_SHARDED_DRAIN_HH
