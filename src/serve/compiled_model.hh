/**
 * @file
 * Compile-once / serve-many front end.
 *
 * CompiledModel binds one (SystemConfig, ModelConfig, BuildOptions)
 * triple to a WorkloadBuilder and memoizes what the one-shot
 * IanusSystem::run path recomputes on every call: summarization
 * programs keyed by input length, resumed prefill *chunks* keyed by
 * (prior, chunk, has-LM-head), generation-step programs keyed by KV
 * length, and *batched* generation steps keyed by the sorted KV-length
 * multiset of the batch, each together with the RunStats its
 * (deterministic) execution produced. A serving workload that replays
 * a request mix — or a strided generation that revisits the same KV
 * samples — pays for each distinct program exactly once.
 *
 * run() reproduces IanusSystem::run bit for bit: the same programs are
 * built, the same engine executes them, and the same trapezoidal stride
 * integration combines the samples. Only redundant work is skipped.
 */

#ifndef IANUS_SERVE_COMPILED_MODEL_HH
#define IANUS_SERVE_COMPILED_MODEL_HH

#include <cstdint>
#include <deque>
#include <map>
#include <tuple>

#include "compiler/workload_builder.hh"
#include "ianus/report.hh"
#include "ianus/system_config.hh"
#include "workloads/model_config.hh"

namespace ianus::serve
{

/** Cache accounting (bench/test introspection). */
struct CacheStats
{
    std::uint64_t summarizationBuilds = 0;
    std::uint64_t summarizationHits = 0;
    std::uint64_t generationBuilds = 0;
    std::uint64_t generationHits = 0;
    std::uint64_t batchBuilds = 0; ///< batched steps (>= 2 requests)
    std::uint64_t batchHits = 0;
    std::uint64_t batchEvictions = 0; ///< FIFO-evicted batched entries
    std::uint64_t chunkBuilds = 0; ///< resumed prefill chunks (prior > 0)
    std::uint64_t chunkHits = 0;

    std::uint64_t
    builds() const
    {
        return summarizationBuilds + generationBuilds + batchBuilds +
               chunkBuilds;
    }

    std::uint64_t
    hits() const
    {
        return summarizationHits + generationHits + batchHits + chunkHits;
    }
};

/** One model compiled onto one device configuration, ready to serve. */
class CompiledModel
{
  public:
    /** Validates @p sys and rejects unsatisfiable configurations. */
    CompiledModel(const SystemConfig &sys,
                  const workloads::ModelConfig &model,
                  const compiler::BuildOptions &opts =
                      compiler::BuildOptions{});

    /**
     * Simulate one inference request end to end, reusing any cached
     * programs. Identical semantics (and identical numbers) to
     * IanusSystem::run, which is a thin wrapper over this.
     *
     * Rejects invalid requests (zero input or output tokens) and a zero
     * @p token_stride with a fatal error.
     */
    InferenceReport run(const workloads::InferenceRequest &request,
                        unsigned token_stride = 1) const;

    /**
     * Executed statistics of the summarization (prefill) stage over
     * @p input_tokens, from the same cache run() uses.
     */
    const RunStats &summarizationStats(std::uint64_t input_tokens) const;

    /**
     * Executed statistics of one chunked-prefill segment: resume the
     * summarization with @p prior_tokens already in the KV cache and
     * process the next @p chunk_tokens of the prompt; only the
     * @p last_chunk runs the LM head and emits the first output token
     * (see WorkloadBuilder::buildSummarizationChunk for the program).
     *
     * Chunk entries are memoized by (prior, chunk, last): serving
     * traces revisit the same chunk-aligned resume offsets across
     * requests of equal prompt length, so chunk keys recur the way
     * summarization keys do (unlike batched-step keys). A whole-prompt
     * chunk (prior == 0, last) resolves to the monolithic
     * summarization entry that run() uses, so `prefillChunk = 0` and
     * chunk-covers-the-prompt serving produce bit-identical stats —
     * the chunked-prefill fallback anchor.
     */
    const RunStats &prefillChunkStats(std::uint64_t prior_tokens,
                                      std::uint64_t chunk_tokens,
                                      bool last_chunk) const;

    /**
     * Executed statistics of one *batched* generation step: each entry
     * of @p kv_lens is one request's current KV length and the step
     * emits one token per request. The entry is memoized under the
     * sorted KV-length multiset — request order never changes the cost
     * — in a bounded FIFO cache (batched keys rarely recur within a
     * drain, since every member's KV length advances each step).
     * Returned by value: an entry may be evicted at any later call.
     *
     * A batch of one resolves to the scalar generation-step entry that
     * run() uses, so batch-1 numbers equal the unbatched path bit for
     * bit (the batching cost model's regression anchor).
     */
    RunStats generationStepStats(std::vector<std::uint64_t> kv_lens) const;

    /** Most batched-step entries retained (FIFO eviction; safe because
     *  entries are pure recomputable functions of the key). */
    static constexpr std::size_t maxBatchEntries = 1024;

    // --- Routing estimates --------------------------------------------------
    //
    // Heterogeneity-aware routers need to know how fast *this* replica
    // is, not how busy it has been. These estimates are derived from the
    // same cached program stats run() uses — every term is executed on
    // this replica's own device model, so an NPU-MEM replica or a
    // different tensor-parallel degree honestly reports different
    // numbers. They are pure functions of the replica configuration and
    // the request shape (never of cache history), so routing decisions
    // do not depend on what a replica happened to serve earlier.

    /** KV length of the canonical probe step behind estimatedStepMs()
     *  (the default trace's median 256-token prompt plus its first
     *  output token). */
    static constexpr std::uint64_t routingProbeKv = 257;

    /**
     * Per-token service-time estimate of this replica: the wall ms of
     * one generation step at routingProbeKv, from the scalar
     * generation-step cache (built on first use, a hit afterwards).
     * 0 for encoder models, which have no generation stage.
     */
    double estimatedStepMs() const;

    /**
     * Estimated wall ms of @p request's prefill on this replica: the
     * memoized summarization entry itself (exact, and shared with the
     * entry a dispatch would build anyway).
     */
    double estimatePrefillMs(std::uint64_t input_tokens) const;

    /**
     * Estimated wall ms of resuming @p request's prefill from a warm
     * prefix cache: process the @p chunk_tokens-token delta with
     * @p prior_tokens already in the KV cache, LM head included — the
     * memoized chunk entry a prefix-cache hit would execute anyway.
     * The session-sticky router's re-prefill penalty: a hit candidate
     * is priced with this on its bound replica and with the full
     * estimatePrefillMs() everywhere else.
     */
    double estimateResumePrefillMs(std::uint64_t prior_tokens,
                                   std::uint64_t chunk_tokens) const;

    /**
     * Estimated wall ms of @p request's generation stage served alone
     * on this replica: (output - 1) steps charged at the midpoint-KV
     * step cost (token latency is smooth in KV length, so the midpoint
     * sample is the one-point trapezoid). 0 for encoders and
     * single-token outputs.
     */
    double
    estimateGenerationMs(const workloads::InferenceRequest &request) const;

    /** Prefill + generation estimate of the whole request served alone. */
    double
    estimateServiceMs(const workloads::InferenceRequest &request) const;

    const SystemConfig &config() const { return cfg_; }
    const workloads::ModelConfig &model() const { return model_; }
    const compiler::BuildOptions &options() const { return opts_; }
    const compiler::WorkloadBuilder &builder() const { return builder_; }

    const CacheStats &cacheStats() const { return cache_; }

    /** Cached entry count (summarization + generation programs plus
     *  batched-step stats entries). */
    std::size_t cachedPrograms() const;

    /** Drop all memoized programs and statistics. */
    void clearCache() const;

  private:
    /** A compiled program together with its executed statistics. */
    struct Entry
    {
        isa::Program program;
        RunStats stats;
    };

    const Entry &summarization(std::uint64_t input_tokens) const;
    const Entry &generation(std::uint64_t kv_len) const;
    RunStats execute(const isa::Program &prog) const;

    SystemConfig cfg_;
    workloads::ModelConfig model_;
    compiler::BuildOptions opts_;
    compiler::WorkloadBuilder builder_;

    // The device model is deterministic, so memoizing a program's stats
    // alongside the program makes a replayed request nearly free.
    mutable std::map<std::uint64_t, Entry> summarizationCache_;
    mutable std::map<std::uint64_t, Entry> generationCache_;
    // Batched steps, keyed by the sorted KV-length multiset. Stats
    // only (no program), bounded to maxBatchEntries FIFO: every
    // member's KV length advances each step, so keys rarely recur
    // within a drain, and an unbounded cache would grow linearly with
    // simulated tokens. The bound keeps the hit pattern that matters —
    // consecutive segments share trapezoid endpoints — while capping
    // memory.
    mutable std::map<std::vector<std::uint64_t>, RunStats> batchCache_;
    mutable std::deque<std::vector<std::uint64_t>> batchOrder_;
    // Resumed prefill chunks, keyed by (prior, chunk, has LM head).
    // Unbounded like the summarization cache: requests of equal prompt
    // length resume at the same chunk-aligned offsets, so these keys
    // recur across a serving trace.
    mutable std::map<std::tuple<std::uint64_t, std::uint64_t, bool>,
                     Entry>
        chunkCache_;
    mutable CacheStats cache_;
};

} // namespace ianus::serve

#endif // IANUS_SERVE_COMPILED_MODEL_HH
