#include "serve/kv_manager.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ianus::serve
{

const char *
toString(KvAdmission admission)
{
    switch (admission) {
    case KvAdmission::None: return "none";
    case KvAdmission::Queue: return "queue";
    case KvAdmission::Shed: return "shed";
    }
    return "?";
}

const char *
toString(KvLayout layout)
{
    switch (layout) {
    case KvLayout::Unified: return "unified";
    case KvLayout::Partitioned: return "partitioned";
    }
    return "?";
}

KvAdmission
makeKvAdmission(const std::string &name)
{
    if (name == "none")
        return KvAdmission::None;
    if (name == "queue")
        return KvAdmission::Queue;
    if (name == "shed")
        return KvAdmission::Shed;
    IANUS_FATAL("unknown KV admission mode '", name,
                "' (none, queue, shed)");
}

KvLayout
makeKvLayout(const std::string &name)
{
    if (name == "unified")
        return KvLayout::Unified;
    if (name == "partitioned")
        return KvLayout::Partitioned;
    IANUS_FATAL("unknown KV layout '", name, "' (unified, partitioned)");
}

std::uint64_t
kvBytesPerToken(const workloads::ModelConfig &model)
{
    // K and V, one headDim vector per head per block, BF16.
    return 2 * model.nBlocks * model.qkvDim() * 2;
}

std::uint64_t
deriveKvCapacityTokens(const SystemConfig &sys,
                       const workloads::ModelConfig &model)
{
    const auto &mem = sys.mem;
    const std::uint64_t bankBytes =
        mem.capacityBytes /
        (static_cast<std::uint64_t>(mem.channels) * mem.banksPerChannel);
    const std::uint64_t rowsPerBank = bankBytes / mem.rowBytes;
    // Recompose from the channel geometry so a geometry edit (rows,
    // banks, channels) flows into the KV budget the way the issue's
    // banks/rows -> bytes -> tokens chain describes.
    const std::uint64_t dramBytes =
        static_cast<std::uint64_t>(mem.channels) * mem.banksPerChannel *
        rowsPerBank * mem.rowBytes;
    const std::uint64_t weights = model.weightBytes();
    if (weights >= dramBytes)
        IANUS_FATAL("model '", model.name, "' weights (", weights,
                    " B) exceed device DRAM (", dramBytes,
                    " B); no room for KV cache");
    return (dramBytes - weights) / kvBytesPerToken(model);
}

std::uint64_t
kvTransferBytes(const workloads::ModelConfig &model, std::uint64_t tokens)
{
    return tokens * kvBytesPerToken(model);
}

double
deriveKvLinkGBs(const SystemConfig &sys)
{
    // bytesPerTick is bytes/ps, so GB/s = bytesPerTick * 1000; the DMA
    // engine never hits the line rate (same derate as the KV spill
    // path).
    return sys.pcie.bytesPerTick * 1000.0 * sys.dmaEfficiency;
}

double
kvTransferMs(std::uint64_t bytes, double link_gbs)
{
    if (!(link_gbs > 0.0))
        IANUS_FATAL("KV link bandwidth must be positive, got ", link_gbs,
                    " GB/s");
    if (std::isinf(link_gbs))
        return 0.0; // the explicit zero-cost link, exactly
    // GB/s = bytes/us, so ms = bytes / (GB/s * 1e6).
    return static_cast<double>(bytes) / (link_gbs * 1e6);
}

KvBlockManager::KvBlockManager(const KvOptions &opts,
                               const SystemConfig &sys)
    : opts_(opts)
{
    if (!opts.enabled())
        IANUS_FATAL("KvBlockManager needs a positive KV capacity");
    if (opts.blockTokens == 0)
        IANUS_FATAL("KV block size must be positive");
    const std::uint64_t blocks = opts.capacityTokens / opts.blockTokens;
    if (blocks == 0)
        IANUS_FATAL("KV capacity ", opts.capacityTokens,
                    " tokens is smaller than one ", opts.blockTokens,
                    "-token block");
    if (opts.layout == KvLayout::Partitioned) {
        // NPU-DRAM region first, PIM region second (Fig 13 halves).
        regions_.resize(2);
        regions_[0].capBlocks = blocks / 2;
        regions_[1].capBlocks = blocks - blocks / 2;
        if (regions_[0].capBlocks == 0)
            IANUS_FATAL("partitioned KV layout needs at least two "
                        "blocks of capacity (got ", blocks, ")");
    } else {
        regions_.resize(1);
        regions_[0].capBlocks = blocks;
    }
    for (auto &r : regions_)
        r.freeBlocks = static_cast<std::int64_t>(r.capBlocks);
    // Spilled KV rides PCIe instead of device DRAM: each spilled byte
    // takes (DRAM effective / PCIe) times as long to move.
    const double dramGBs = sys.mem.systemPeakGBs() * sys.dmaEfficiency;
    const double pcieGBs = sys.pcie.bytesPerTick * 1000.0;
    spillFactor_ = std::max(1.0, dramGBs / pcieGBs);
}

std::uint64_t
KvBlockManager::blocksFor(std::uint64_t tokens) const
{
    return (tokens + opts_.blockTokens - 1) / opts_.blockTokens;
}

std::uint64_t
KvBlockManager::totalBlocks() const
{
    std::uint64_t total = 0;
    for (const auto &r : regions_)
        total += r.capBlocks;
    return total;
}

std::int64_t
KvBlockManager::freeBlocks() const
{
    std::int64_t free = 0;
    for (const auto &r : regions_)
        free += r.freeBlocks;
    return free;
}

double
KvBlockManager::pressure() const
{
    const auto total = static_cast<double>(totalBlocks());
    return (total - static_cast<double>(freeBlocks())) / total;
}

void
KvBlockManager::notePressure()
{
    peakPressure_ = std::max(peakPressure_, pressure());
}

bool
KvBlockManager::canAdmit(std::uint64_t max_tokens) const
{
    if (opts_.admission == KvAdmission::None)
        return true;
    const auto need = static_cast<std::int64_t>(blocksFor(max_tokens));
    for (const auto &r : regions_)
        if (r.freeBlocks >= need)
            return true;
    return false;
}

bool
KvBlockManager::canEverAdmit(std::uint64_t max_tokens) const
{
    const std::uint64_t need = blocksFor(max_tokens);
    for (const auto &r : regions_)
        if (r.capBlocks >= need)
            return true;
    return false;
}

void
KvBlockManager::admit(std::uint64_t id, std::uint64_t max_tokens)
{
    if (requests_.count(id))
        IANUS_FATAL("request ", id, " already holds KV blocks");
    const std::uint64_t need = blocksFor(max_tokens);
    // Emptier region first so a partitioned pool fills evenly; ties go
    // to the NPU region for determinism.
    std::size_t region = 0;
    for (std::size_t i = 1; i < regions_.size(); ++i)
        if (regions_[i].freeBlocks > regions_[region].freeBlocks)
            region = i;
    if (regions_[region].freeBlocks < static_cast<std::int64_t>(need) &&
        opts_.admission != KvAdmission::None)
        IANUS_FATAL("KV admit of ", need, " blocks for request ", id,
                    " exceeds free space (", regions_[region].freeBlocks,
                    " blocks) under ", toString(opts_.admission),
                    " admission");
    regions_[region].freeBlocks -= static_cast<std::int64_t>(need);
    requests_[id] = Resident{region, need, max_tokens, 0, false};
    notePressure();
}

void
KvBlockManager::setUsed(std::uint64_t id, std::uint64_t tokens)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        IANUS_FATAL("setUsed on request ", id, " with no KV blocks");
    Resident &res = it->second;
    if (res.parked)
        IANUS_FATAL("setUsed on parked request ", id,
                    " (parked KV cannot grow)");
    // An encoder summarization or the post-prefill bootstrap token can
    // nudge one past the worst case; the reservation already covers it.
    tokens = std::min(tokens, res.maxTokens);
    if (tokens < res.usedTokens)
        return; // KV only grows while resident
    regions_[res.region].usedTokens += tokens - res.usedTokens;
    res.usedTokens = tokens;
}

void
KvBlockManager::park(std::uint64_t id)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        IANUS_FATAL("park on request ", id, " with no KV blocks");
    Resident &res = it->second;
    if (res.parked)
        IANUS_FATAL("request ", id, " is already parked");
    const std::uint64_t keep = blocksFor(res.usedTokens);
    regions_[res.region].freeBlocks +=
        static_cast<std::int64_t>(res.reservedBlocks - keep);
    res.reservedBlocks = keep;
    res.parked = true;
}

bool
KvBlockManager::canResume(std::uint64_t id) const
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        IANUS_FATAL("canResume on request ", id, " with no KV blocks");
    const Resident &res = it->second;
    if (!res.parked)
        IANUS_FATAL("canResume on request ", id, " which is not parked");
    if (opts_.admission == KvAdmission::None)
        return true;
    const std::uint64_t grow =
        blocksFor(res.maxTokens) - res.reservedBlocks;
    return regions_[res.region].freeBlocks >=
           static_cast<std::int64_t>(grow);
}

bool
KvBlockManager::parkWouldAdmit(std::uint64_t victim,
                               std::uint64_t max_tokens) const
{
    if (opts_.admission == KvAdmission::None)
        return true;
    auto it = requests_.find(victim);
    if (it == requests_.end() || it->second.parked)
        IANUS_FATAL("parkWouldAdmit needs a running resident, got ",
                    victim);
    const Resident &v = it->second;
    const std::uint64_t freed =
        v.reservedBlocks - blocksFor(v.usedTokens);
    const auto need = static_cast<std::int64_t>(blocksFor(max_tokens));
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        std::int64_t free = regions_[i].freeBlocks;
        if (i == v.region)
            free += static_cast<std::int64_t>(freed);
        if (free >= need)
            return true;
    }
    return false;
}

bool
KvBlockManager::parkWouldResume(std::uint64_t victim,
                                std::uint64_t cand) const
{
    if (opts_.admission == KvAdmission::None)
        return true;
    auto vit = requests_.find(victim);
    if (vit == requests_.end() || vit->second.parked)
        IANUS_FATAL("parkWouldResume needs a running resident, got ",
                    victim);
    auto cit = requests_.find(cand);
    if (cit == requests_.end() || !cit->second.parked)
        IANUS_FATAL("parkWouldResume needs a parked candidate, got ",
                    cand);
    const Resident &v = vit->second;
    const Resident &c = cit->second;
    const std::uint64_t freed =
        v.reservedBlocks - blocksFor(v.usedTokens);
    std::int64_t free = regions_[c.region].freeBlocks;
    if (v.region == c.region)
        free += static_cast<std::int64_t>(freed);
    const auto grow = static_cast<std::int64_t>(
        blocksFor(c.maxTokens) - c.reservedBlocks);
    return free >= grow;
}

bool
KvBlockManager::releaseWouldAdmit(std::uint64_t old_id,
                                  std::uint64_t max_tokens) const
{
    if (opts_.admission == KvAdmission::None)
        return true;
    auto it = requests_.find(old_id);
    if (it == requests_.end())
        IANUS_FATAL("releaseWouldAdmit needs a resident, got ", old_id);
    const Resident &old = it->second;
    const auto need = static_cast<std::int64_t>(blocksFor(max_tokens));
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        std::int64_t free = regions_[i].freeBlocks;
        if (i == old.region)
            free += static_cast<std::int64_t>(old.reservedBlocks);
        if (free >= need)
            return true;
    }
    return false;
}

void
KvBlockManager::resume(std::uint64_t id)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        IANUS_FATAL("resume on request ", id, " with no KV blocks");
    Resident &res = it->second;
    if (!res.parked)
        IANUS_FATAL("resume on request ", id, " which is not parked");
    const std::uint64_t full = blocksFor(res.maxTokens);
    const auto grow =
        static_cast<std::int64_t>(full - res.reservedBlocks);
    if (regions_[res.region].freeBlocks < grow &&
        opts_.admission != KvAdmission::None)
        IANUS_FATAL("KV resume of request ", id, " needs ", grow,
                    " blocks but region has ",
                    regions_[res.region].freeBlocks, " free under ",
                    toString(opts_.admission), " admission");
    regions_[res.region].freeBlocks -= grow;
    res.reservedBlocks = full;
    res.parked = false;
    notePressure();
}

void
KvBlockManager::release(std::uint64_t id)
{
    auto it = requests_.find(id);
    if (it == requests_.end())
        IANUS_FATAL("release on request ", id, " with no KV blocks");
    const Resident &res = it->second;
    const std::uint64_t gross = res.reservedBlocks * opts_.blockTokens;
    fragGross_ += gross;
    fragWaste_ += gross - std::min(gross, res.usedTokens);
    regions_[res.region].freeBlocks +=
        static_cast<std::int64_t>(res.reservedBlocks);
    regions_[res.region].usedTokens -= res.usedTokens;
    requests_.erase(it);
}

std::uint64_t
KvBlockManager::residentTokens() const
{
    std::uint64_t tokens = 0;
    for (const auto &r : regions_)
        tokens += r.usedTokens;
    return tokens;
}

double
KvBlockManager::dilation() const
{
    std::uint64_t spilled = 0;
    std::uint64_t used = 0;
    for (const auto &r : regions_) {
        const std::uint64_t cap = r.capBlocks * opts_.blockTokens;
        spilled += r.usedTokens > cap ? r.usedTokens - cap : 0;
        used += r.usedTokens;
    }
    if (spilled == 0 || used == 0)
        return 1.0;
    const double f =
        static_cast<double>(spilled) / static_cast<double>(used);
    return 1.0 + f * (spillFactor_ - 1.0);
}

double
KvBlockManager::meanFragmentation() const
{
    if (fragGross_ == 0)
        return 0.0;
    return static_cast<double>(fragWaste_) /
           static_cast<double>(fragGross_);
}

double
KvBlockManager::readBandwidthGBs(const SystemConfig &sys, KvLayout layout)
{
    const double full = sys.mem.systemPeakGBs() * sys.dmaEfficiency;
    return layout == KvLayout::Partitioned ? full / 2.0 : full;
}

} // namespace ianus::serve
