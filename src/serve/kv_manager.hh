/**
 * @file
 * KV-cache memory as a first-class serving resource.
 *
 * Until this layer, `ReplicaStatus::kvTokens` was reported but nothing
 * bounded it — replicas admitted by batch-slot count alone, so a
 * long-context burst cost nothing. KvBlockManager turns the DRAM
 * geometry the simulator already owns (`SystemConfig::mem`: channels x
 * banks x rows x row bytes) into a per-replica KV *block* budget and
 * charges every resident — and every parked evictee — against it:
 *
 *  - **Capacity** derives from the channel geometry: the device's DRAM
 *    bytes minus one copy of the model weights, divided by the model's
 *    per-token KV footprint (2 x nBlocks x nHeads x headDim x BF16 for
 *    K and V). `deriveKvCapacityTokens()` is that arithmetic;
 *    `KvOptions::capacityTokens` may also be set explicitly (0 keeps
 *    the pre-PR-6 unbounded behavior, bit for bit).
 *
 *  - **Paged allocation** (vLLM-style): KV occupies fixed-size blocks
 *    of `blockTokens` tokens; a request's reservation is
 *    ceil(tokens / block) blocks, so internal fragmentation is modeled
 *    rather than assumed away (`meanFragmentation()` reports the waste
 *    at release). Admission reserves the request's *worst-case* KV
 *    (prompt + all output tokens): under the PR-4 eviction contract a
 *    parked evictee's KV stays on-replica — eviction can never free a
 *    resident's cache — so worst-case reservation is what guarantees
 *    every admitted request can always grow to completion. Parking
 *    *shrinks* the charge to the blocks actually written (the unused
 *    headroom goes back to the pool, which is the throughput point of
 *    evicting), and resuming re-reserves it — blocked until blocks
 *    free up.
 *
 *  - **Admission control** (`KvAdmission`): `none` keeps slot-count
 *    admission — reservations overcommit, and KV beyond capacity
 *    spills to host memory over PCIe, dilating every segment on the
 *    over-committed replica by the spilled fraction of its KV traffic
 *    (`dilation()`; the DRAM-vs-PCIe bandwidth ratio from the same
 *    SystemConfig). `queue` holds a request in the ready queue until
 *    some replica has blocks; `shed` drops it at the admission attempt
 *    instead (load shedding).
 *
 *  - **Address-mapping layout** (`KvLayout`, after UMDAM's unified vs
 *    partitioned DRAM mappings): `unified` places KV blocks anywhere
 *    in the device's channels — one pool, full aggregate read
 *    bandwidth (`readBandwidthGBs`). `partitioned` splits the block
 *    pool into an NPU-DRAM region and a PIM region (half the channels
 *    each, mirroring MemoryMode::Partitioned); a request's blocks live
 *    entirely in one region, chosen emptier-first at admission, so its
 *    KV reads see half the channels and a skewed region fills — and
 *    spills or sheds — while the other still has room. The bandwidth
 *    and overflow cost of partitioning is thereby measurable
 *    (bench/micro_kv_capacity gates on it).
 *
 * The manager is deterministic arithmetic over the engine's
 * deterministic events — no clock, no randomness — so capacity-bounded
 * drains replay bit-identically, and `capacityTokens == 0` leaves the
 * engine's numbers untouched.
 */

#ifndef IANUS_SERVE_KV_MANAGER_HH
#define IANUS_SERVE_KV_MANAGER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ianus/system_config.hh"
#include "workloads/model_config.hh"

namespace ianus::serve
{

/** What happens when a request's KV reservation does not fit. */
enum class KvAdmission : std::uint8_t
{
    None,  ///< slot-count admission; overcommitted KV spills over PCIe
    Queue, ///< hold the request in the ready queue until blocks free
    Shed   ///< drop the request at the admission attempt
};

/** KV block placement across the device's DRAM channels (UMDAM). */
enum class KvLayout : std::uint8_t
{
    Unified,    ///< one pool over all channels, full read bandwidth
    Partitioned ///< NPU / PIM half-pools; a request lives in one region
};

const char *toString(KvAdmission admission);
const char *toString(KvLayout layout);

/** Admission by name: "none", "queue", "shed". Unknown is fatal. */
KvAdmission makeKvAdmission(const std::string &name);

/** Layout by name: "unified", "partitioned". Unknown is fatal. */
KvLayout makeKvLayout(const std::string &name);

/** KV-capacity knobs (ServingOptions::kv). */
struct KvOptions
{
    /** Per-replica KV capacity in tokens. 0 = unbounded: the whole KV
     *  layer is off and the engine's numbers are bit-identical to the
     *  pre-capacity behavior. */
    std::uint64_t capacityTokens = 0;

    /** Tokens per KV block (the paging granularity; reservations are
     *  ceil(tokens / blockTokens) blocks). Must be positive. */
    std::uint64_t blockTokens = 16;

    /** What to do when a reservation does not fit (needs capacity). */
    KvAdmission admission = KvAdmission::None;

    /** Address mapping of KV blocks across DRAM channels. */
    KvLayout layout = KvLayout::Unified;

    bool enabled() const { return capacityTokens > 0; }
};

/** Bytes of KV cache one token occupies for @p model (K and V across
 *  all blocks and heads, BF16). */
std::uint64_t kvBytesPerToken(const workloads::ModelConfig &model);

/**
 * Per-replica KV capacity in tokens, derived from the DRAM channel
 * geometry: channels x banks x rows-per-bank x row bytes of @p sys
 * gives the device's DRAM bytes; one copy of the model weights comes
 * off the top; the rest divided by kvBytesPerToken() is the token
 * budget. Fatal if the weights alone exceed the device's DRAM.
 */
std::uint64_t deriveKvCapacityTokens(const SystemConfig &sys,
                                     const workloads::ModelConfig &model);

// --- Prefill -> decode KV transfer cost --------------------------------------

/** Bytes a @p tokens-token KV occupies on the prefill->decode link for
 *  @p model: tokens x kvBytesPerToken() — exactly the cache the decode
 *  side must hold before generation can start. */
std::uint64_t kvTransferBytes(const workloads::ModelConfig &model,
                              std::uint64_t tokens);

/**
 * Default prefill->decode link bandwidth in GB/s, derived from the
 * *source* replica's PCIe parameters: the per-tick PCIe byte rate
 * scaled to GB/s (ticks are ps, so GB/s = bytesPerTick x 1000), times
 * the DMA efficiency the spill model already charges. This is the
 * honest "host-mediated handoff" cost when ServingOptions::kvLinkGBs
 * is left at 0.
 */
double deriveKvLinkGBs(const SystemConfig &sys);

/** Milliseconds @p bytes take at @p link_gbs GB/s. Monotone and linear
 *  in bytes at fixed bandwidth; +infinity bandwidth is the exact-zero
 *  cost link (bytes still counted). Fatal if @p link_gbs is not
 *  positive. */
double kvTransferMs(std::uint64_t bytes, double link_gbs);

/**
 * One replica's KV block pool. The ServingEngine drives it at the same
 * event boundaries it already schedules at: admit() at dispatch,
 * setUsed() as segments advance KV, park()/resume() around the PR-4
 * eviction contract, release() at completion. All quantities are exact
 * integers (blocks, tokens); the only doubles are the derived metrics.
 */
class KvBlockManager
{
  public:
    /** @p opts must be enabled; @p sys supplies the DRAM-vs-PCIe
     *  bandwidth ratio the spill model charges. */
    KvBlockManager(const KvOptions &opts, const SystemConfig &sys);

    std::uint64_t blockTokens() const { return opts_.blockTokens; }

    /** Blocks a @p tokens-token KV occupies (ceil — the internal
     *  fragmentation paging models). */
    std::uint64_t blocksFor(std::uint64_t tokens) const;

    /** Pool size in blocks (floor(capacityTokens / blockTokens),
     *  summed over regions). */
    std::uint64_t totalBlocks() const;

    /** Unreserved blocks; negative under `none`-admission overcommit. */
    std::int64_t freeBlocks() const;

    /** Reserved / total blocks. > 1 means overcommitted (spilling). */
    double pressure() const;

    /** High-water pressure over the manager's lifetime. */
    double peakPressure() const { return peakPressure_; }

    /** Could a fresh request with @p max_tokens worst-case KV reserve
     *  now? Some single region must fit it (a partitioned request
     *  cannot straddle regions). Always true under `none` admission
     *  (overcommit is the policy). */
    bool canAdmit(std::uint64_t max_tokens) const;

    /** Whether @p max_tokens can fit an *empty* pool — the admissible
     *  ceiling (region size under partitioned). A request beyond it
     *  can never dispatch under `queue` admission. */
    bool canEverAdmit(std::uint64_t max_tokens) const;

    /** Reserve worst-case blocks for request @p id (fatal if the id is
     *  already resident, or if the reservation does not fit and the
     *  admission mode is not `none`). Partitioned placement picks the
     *  region with more free blocks (ties: the NPU region). */
    void admit(std::uint64_t id, std::uint64_t max_tokens);

    /** Record the KV tokens request @p id has actually written
     *  (monotone; clamped to the admitted worst case). Drives the
     *  spill model and the fragmentation metric. */
    void setUsed(std::uint64_t id, std::uint64_t tokens);

    /** Park an evicted resident: its written KV stays charged (the
     *  PR-4 contract keeps the cache on-replica) but the un-grown
     *  headroom returns to the pool. */
    void park(std::uint64_t id);

    /** Can the parked request @p id re-reserve its headroom now? */
    bool canResume(std::uint64_t id) const;

    /** Would parking running resident @p victim free enough blocks for
     *  a fresh @p max_tokens admission? Gates eviction-for-KV: an
     *  eviction that would not unblock its beneficiary is pure churn.
     *  Always true under `none` admission. */
    bool parkWouldAdmit(std::uint64_t victim,
                        std::uint64_t max_tokens) const;

    /** Would parking running resident @p victim free enough blocks for
     *  the parked request @p cand to resume? */
    bool parkWouldResume(std::uint64_t victim, std::uint64_t cand) const;

    /** Would releasing resident @p old_id (running or parked — a
     *  pinned session prefix is a parked resident) free enough blocks
     *  for a fresh @p max_tokens admission? Gates the prefix-cache hit
     *  path, where the pinned prior turn's KV is released in the same
     *  dispatch that admits the new turn. Always true under `none`
     *  admission. */
    bool releaseWouldAdmit(std::uint64_t old_id,
                           std::uint64_t max_tokens) const;

    /** Re-reserve the parked request's worst case (fatal if it does
     *  not fit and admission is not `none`). */
    void resume(std::uint64_t id);

    /** Release request @p id's blocks (completion) and sample its
     *  internal fragmentation. */
    void release(std::uint64_t id);

    /** Resident KV tokens (written, including parked evictees). */
    std::uint64_t residentTokens() const;

    /** Segment-time dilation of the spill model: KV written beyond a
     *  region's capacity lives in host memory, so the spilled fraction
     *  of the replica's KV traffic runs at PCIe instead of DRAM
     *  bandwidth. 1.0 exactly when nothing spills. */
    double dilation() const;

    /** Token-weighted mean internal fragmentation over released
     *  requests: wasted block tokens / reserved block tokens. */
    double meanFragmentation() const;

    /** Fragmentation numerator/denominator for fleet-level merging. */
    std::uint64_t fragWasteTokens() const { return fragWaste_; }
    std::uint64_t fragGrossTokens() const { return fragGross_; }

    /** Resident request count (including parked). */
    std::size_t residents() const { return requests_.size(); }

    /**
     * Effective KV *read* bandwidth of @p layout on @p sys in GB/s:
     * unified KV stripes over every channel; a partitioned request's
     * blocks live in one half-pool, so its attention reads see half
     * the channels. (DMA efficiency applies to both — the UMDAM
     * bandwidth cost of partitioning, reported by the bench.)
     */
    static double readBandwidthGBs(const SystemConfig &sys,
                                   KvLayout layout);

  private:
    struct Region
    {
        std::uint64_t capBlocks = 0;
        std::int64_t freeBlocks = 0; ///< negative when overcommitted
        std::uint64_t usedTokens = 0;
    };

    struct Resident
    {
        std::size_t region = 0;
        std::uint64_t reservedBlocks = 0;
        std::uint64_t maxTokens = 0;
        std::uint64_t usedTokens = 0;
        bool parked = false;
    };

    void notePressure();

    KvOptions opts_;
    double spillFactor_ = 1.0; ///< DRAM / PCIe bandwidth ratio
    std::vector<Region> regions_;
    std::map<std::uint64_t, Resident> requests_;
    double peakPressure_ = 0.0;
    std::uint64_t fragWaste_ = 0;
    std::uint64_t fragGross_ = 0;
};

} // namespace ianus::serve

#endif // IANUS_SERVE_KV_MANAGER_HH
