#include "ianus/execution_engine.hh"

#include <array>
#include <bit>
#include <memory>

#include "common/logging.hh"
#include "dram/channel_arbiter.hh"
#include "noc/noc.hh"
#include "npu/command_scheduler.hh"
#include "npu/dma_engine.hh"
#include "npu/matrix_unit.hh"
#include "npu/vector_unit.hh"
#include "pim/pim_channel.hh"
#include "sim/event_queue.hh"

namespace ianus
{

using isa::UnitKind;

namespace
{

/** Per-run simulation state; one instance per ExecutionEngine::run(). */
class RunContext
{
  public:
    RunContext(const SystemConfig &cfg, unsigned devices,
               const isa::Program &prog)
        : cfg_(cfg), devices_(devices), prog_(prog),
          arbiter_(eq_, cfg.mem, cfg.dmaEfficiency),
          sched_(prog, cfg.cores, cfg.sched), mu_(cfg.mu), vu_(cfg.vu),
          pimEngine_(cfg.mem, cfg.pimUnit), noc_(cfg.noc),
          dma_(noc_, cfg.mem),
          unitBusy_(cfg.cores),
          startTick_(prog.size(), 0)
    {
    }

    RunStats
    execute()
    {
        pump();
        while (!sched_.allDone()) {
            if (!eq_.step()) {
                dumpDeadlock();
                IANUS_PANIC("execution deadlock: ",
                            sched_.completedCount(), "/", prog_.size(),
                            " commands completed");
            }
        }
        stats_.wallTicks = eq_.now();
        stats_.dramReadBytes +=
            static_cast<double>(arbiter_.readBytes());
        stats_.dramWriteBytes +=
            static_cast<double>(arbiter_.writeBytes());
        return stats_;
    }

  private:
    const SystemConfig &cfg_;
    unsigned devices_;
    const isa::Program &prog_;
    sim::EventQueue eq_;
    dram::ChannelArbiter arbiter_;
    npu::CommandScheduler sched_;
    npu::MatrixUnit mu_;
    npu::VectorUnit vu_;
    pim::PimChannelEngine pimEngine_;
    noc::Noc noc_;
    npu::DmaEngine dma_;

    std::vector<std::array<bool, RunStats::numUnits>> unitBusy_;
    std::vector<Tick> startTick_;
    dram::ChannelSet pimBusyMask_ = 0;
    dram::ChannelSet pimWaitMask_ = 0;
    RunStats stats_;
    bool pumping_ = false;
    /** In-flight command count and span-open timestamp per OpClass. */
    std::array<unsigned, RunStats::numClasses> classActive_{};
    std::array<Tick, RunStats::numClasses> classSpanStart_{};
    Tick lastAttr_ = 0;

    static std::size_t
    idx(UnitKind unit)
    {
        return static_cast<std::size_t>(unit);
    }

    /** Channels an off-chip command would touch; 0 for on-chip work. */
    static dram::ChannelSet
    offChipChannels(const isa::Command &cmd)
    {
        if (const auto *g = std::get_if<isa::MuGemmArgs>(&cmd.payload))
            return g->weightBytes > 0 ? g->weightChannels : 0;
        if (const auto *d = std::get_if<isa::DmaArgs>(&cmd.payload))
            return d->offChip ? d->channels : 0;
        return 0;
    }

    void
    pump()
    {
        if (pumping_)
            return; // completions re-enter; the outer loop re-scans
        pumping_ = true;
        bool progress = true;
        while (progress) {
            progress = false;
            // PIM pass first so DMA dispatch sees fresh wait masks.
            pimWaitMask_ = 0;
            for (std::uint16_t c = 0; c < cfg_.cores; ++c)
                progress |= tryDispatchPim(c);
            static constexpr UnitKind npu_units[] = {
                UnitKind::MatrixUnit, UnitKind::VectorUnit,
                UnitKind::DmaIn, UnitKind::DmaOut, UnitKind::Sync};
            for (std::uint16_t c = 0; c < cfg_.cores; ++c)
                for (UnitKind unit : npu_units)
                    progress |= tryDispatch(c, unit);
        }
        pumping_ = false;
    }

    bool
    tryDispatchPim(std::uint16_t core)
    {
        if (unitBusy_[core][idx(UnitKind::Pim)])
            return false;
        auto ready = sched_.peekReady(core, UnitKind::Pim);
        if (!ready || !sched_.canIssue(core, UnitKind::Pim))
            return false;
        const isa::Command &cmd = prog_.at(*ready);
        const auto &args = std::get<isa::PimArgs>(cmd.payload);
        dram::ChannelSet mask = args.macro.channelMask;
        // Admission: channels idle of both PIM work and normal flows.
        if ((mask & pimBusyMask_) || arbiter_.anyFlowOn(mask)) {
            pimWaitMask_ |= mask; // hold new off-chip traffic out
            return false;
        }
        sched_.issue(*ready);
        unitBusy_[core][idx(UnitKind::Pim)] = true;
        startTick_[*ready] = eq_.now();
        openSpan(cmd.opClass);
        pimBusyMask_ |= mask;
        arbiter_.acquireExclusive(mask);

        unsigned channels = static_cast<unsigned>(std::popcount(mask));
        pim::MacroTiming mt = pimEngine_.macroTiming(args.macro, channels);
        double reps = static_cast<double>(args.repeats);
        stats_.pimMacros += reps;
        stats_.pimActivates += reps * static_cast<double>(mt.micro.actab) *
                               channels;
        stats_.pimGbBursts += reps * static_cast<double>(mt.micro.wrgb) *
                              channels;
        stats_.pimRdBursts += reps * static_cast<double>(mt.micro.rdmac) *
                              channels;
        stats_.pimWeightBytes +=
            reps * static_cast<double>(args.macro.rows) *
            static_cast<double>(args.macro.cols) * pim::elemBytes;

        Tick dur = cfg_.pcuDispatch + noc_.broadcast() +
                   args.repeats * mt.total + cfg_.cmdOverhead;
        std::uint32_t id = *ready;
        eq_.scheduleIn(dur, [this, id, mask] {
            pimBusyMask_ &= ~mask;
            arbiter_.releaseExclusive(mask);
            finish(id);
        });
        return true;
    }

    bool
    tryDispatch(std::uint16_t core, UnitKind unit)
    {
        if (unitBusy_[core][idx(unit)])
            return false;
        auto ready = sched_.peekReady(core, unit);
        if (!ready || !sched_.canIssue(core, unit))
            return false;
        const isa::Command &cmd = prog_.at(*ready);

        // PAS hold: off-chip traffic stays out of running/waiting PIM
        // channel sets.
        dram::ChannelSet touch = offChipChannels(cmd);
        if (touch & (pimBusyMask_ | pimWaitMask_))
            return false;

        // A GEMM with streamed weights drives the core's load DMA for
        // the whole stream — KV prefetches queue behind it (the paper's
        // "prefetching keys and values instead of the weight" point).
        const auto *gemm = std::get_if<isa::MuGemmArgs>(&cmd.payload);
        bool holds_dma = gemm && gemm->weightBytes > 0;
        if (holds_dma && unitBusy_[core][idx(UnitKind::DmaIn)])
            return false;

        sched_.issue(*ready);
        unitBusy_[core][idx(unit)] = true;
        if (holds_dma)
            unitBusy_[core][idx(UnitKind::DmaIn)] = true;
        startTick_[*ready] = eq_.now();
        openSpan(cmd.opClass);
        begin(cmd);
        return true;
    }

    /**
     * Exclusive-attribution priority: FC classes first (an instant under
     * an FC belongs to the FC even if attention work overlaps it), then
     * the attention pipeline, then vector work.
     */
    static std::size_t
    attributionRank(std::size_t cls)
    {
        using isa::OpClass;
        switch (static_cast<OpClass>(cls)) {
          case OpClass::FcQkv: return 0;
          case OpClass::FfnAdd: return 1;
          case OpClass::FcAttnAdd: return 2;
          case OpClass::LmHead: return 3;
          case OpClass::Embedding: return 4;
          case OpClass::SelfAttention: return 5;
          case OpClass::LayerNorm: return 6;
          case OpClass::Other: return 7;
        }
        return 7;
    }

    void
    attributeElapsed()
    {
        Tick now = eq_.now();
        if (now > lastAttr_) {
            std::size_t best = RunStats::numClasses;
            std::size_t best_rank = ~std::size_t{0};
            for (std::size_t i = 0; i < RunStats::numClasses; ++i) {
                if (classActive_[i] && attributionRank(i) < best_rank) {
                    best_rank = attributionRank(i);
                    best = i;
                }
            }
            if (best < RunStats::numClasses)
                stats_.classExclusive[best] +=
                    static_cast<double>(now - lastAttr_);
        }
        lastAttr_ = now;
    }

    void
    openSpan(isa::OpClass cls)
    {
        attributeElapsed();
        auto i = static_cast<std::size_t>(cls);
        if (classActive_[i]++ == 0)
            classSpanStart_[i] = eq_.now();
    }

    void
    closeSpan(isa::OpClass cls)
    {
        attributeElapsed();
        auto i = static_cast<std::size_t>(cls);
        IANUS_ASSERT(classActive_[i] > 0, "span underflow");
        if (--classActive_[i] == 0)
            stats_.classSpan[i] += static_cast<double>(
                eq_.now() - classSpanStart_[i]);
    }

    void
    begin(const isa::Command &cmd)
    {
        const std::uint32_t id = cmd.id;
        const Tick ov = cfg_.cmdOverhead;
        if (const auto *g = std::get_if<isa::MuGemmArgs>(&cmd.payload)) {
            stats_.muFlops += 2.0 * static_cast<double>(g->tokens) *
                              static_cast<double>(g->k) *
                              static_cast<double>(g->n);
            Tick compute =
                mu_.gemmTicks(g->tokens, g->k, g->n) + ov;
            if (g->weightBytes == 0) {
                eq_.scheduleIn(compute, [this, id] { finish(id); });
                return;
            }
            // Weight stream pipelined with compute: done when both the
            // flow and the compute are, plus one tile of pipeline fill.
            compute += mu_.tileFillTicks();
            auto joint = std::make_shared<std::pair<int, Tick>>(2, 0);
            auto part = [this, id, joint](Tick at) {
                joint->second = std::max(joint->second, at);
                if (--joint->first == 0) {
                    Tick when = std::max(joint->second, eq_.now());
                    eq_.schedule(when, [this, id] { finish(id); });
                }
            };
            eq_.scheduleIn(compute,
                           [this, part] { part(eq_.now()); });
            Tick fixed = dma_.loadStartLatency();
            std::uint16_t core = cmd.core;
            arbiter_.startFlow(g->weightBytes, g->weightChannels, false,
                               [this, part, fixed, core] {
                                   // Weight stream drained: the load DMA
                                   // engine frees up for queued loads.
                                   unitBusy_[core][idx(UnitKind::DmaIn)] =
                                       false;
                                   part(eq_.now() + fixed);
                                   pump();
                               });
            return;
        }
        if (const auto *v = std::get_if<isa::VuArgs>(&cmd.payload)) {
            stats_.vuElems += static_cast<double>(v->elems);
            Tick dur = vu_.opTicks(v->op, v->elems) + ov;
            eq_.scheduleIn(dur, [this, id] { finish(id); });
            return;
        }
        if (const auto *d = std::get_if<isa::DmaArgs>(&cmd.payload)) {
            if (!d->offChip) {
                Tick dur = dma_.onChipStreamTicks(d->bytes) + ov;
                eq_.scheduleIn(dur, [this, id] { finish(id); });
                return;
            }
            Tick fixed = (d->isWrite ? dma_.storeStartLatency()
                                     : dma_.loadStartLatency()) +
                         ov;
            arbiter_.startFlow(d->bytes, d->channels, d->isWrite,
                               [this, id, fixed] {
                                   eq_.scheduleIn(fixed, [this, id] {
                                       finish(id);
                                   });
                               });
            return;
        }
        if (const auto *s = std::get_if<isa::SyncArgs>(&cmd.payload)) {
            Tick dur = ov;
            if (!s->phaseMarker) {
                dur += noc_.barrier();
                if (devices_ > 1 && s->interDeviceBytes > 0)
                    dur += allReduceTicks(s->interDeviceBytes);
            }
            eq_.scheduleIn(dur, [this, id] { finish(id); });
            return;
        }
        IANUS_PANIC("unhandled payload in command ", cmd.id);
    }

    /** Ring allgather/allreduce over PCIe (Section 7.1). */
    Tick
    allReduceTicks(std::uint64_t bytes) const
    {
        std::uint64_t steps = 2ull * (devices_ - 1);
        double chunk = static_cast<double>(bytes) /
                       static_cast<double>(devices_);
        Tick per_step =
            static_cast<Tick>(chunk / cfg_.pcie.bytesPerTick) +
            cfg_.pcie.latency;
        return steps * per_step;
    }

    void
    finish(std::uint32_t id)
    {
        const isa::Command &cmd = prog_.at(id);
        Tick dur = eq_.now() - startTick_[id];
        stats_.busy(cmd.opClass) += static_cast<double>(dur);
        stats_.busy(cmd.unit) += static_cast<double>(dur);
        stats_.commands += 1.0;
        closeSpan(cmd.opClass);
        unitBusy_[cmd.core][idx(cmd.unit)] = false;
        sched_.complete(id);
        pump();
    }

    void
    dumpDeadlock() const
    {
        for (std::uint16_t c = 0; c < cfg_.cores; ++c) {
            for (std::size_t u = 0; u < RunStats::numUnits; ++u) {
                auto ready = sched_.peekReady(
                    c, static_cast<UnitKind>(u));
                if (ready)
                    IANUS_WARN("stuck ready: ",
                               prog_.at(*ready).describe());
            }
        }
    }
};

} // namespace

ExecutionEngine::ExecutionEngine(const SystemConfig &cfg, unsigned devices)
    : cfg_(cfg), devices_(devices)
{
    cfg_.validate();
    IANUS_ASSERT(devices_ >= 1, "need at least one device");
}

RunStats
ExecutionEngine::run(const isa::Program &prog)
{
    prog.validate();
    RunContext ctx(cfg_, devices_, prog);
    return ctx.execute();
}

} // namespace ianus
