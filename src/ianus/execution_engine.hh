/**
 * @file
 * The cycle-derived event-driven execution engine.
 *
 * Runs one Program over the device model: per-core matrix/vector units
 * and DMA pairs, the fluid-flow channel arbiter (unified memory
 * contention), and the PIM control unit path. Dispatch policy implements
 * the PIM Access Scheduling runtime rules:
 *
 *  - a macro PIM command is admitted only when its channels carry no
 *    normal memory flows and no other macro command;
 *  - while a macro PIM command is running *or waiting for admission*,
 *    off-chip commands touching its channels are held (the paper's
 *    "DMA commands into wait state");
 *  - matrix-unit GEMMs with streamed weights overlap the weight flow
 *    with compute (Algorithm 1's pipelined model) and are subject to the
 *    same hold, since their flows use the off-chip memory.
 *
 * Every command's duration comes from the Table-1-derived unit models;
 * events fire at command granularity.
 */

#ifndef IANUS_IANUS_EXECUTION_ENGINE_HH
#define IANUS_IANUS_EXECUTION_ENGINE_HH

#include "ianus/report.hh"
#include "ianus/system_config.hh"
#include "isa/program.hh"

namespace ianus
{

/** Executes Programs on one device model. */
class ExecutionEngine
{
  public:
    /**
     * @param cfg     Device configuration.
     * @param devices Devices in the (symmetric) multi-device system;
     *                only affects inter-device barrier costs.
     */
    explicit ExecutionEngine(const SystemConfig &cfg, unsigned devices = 1);

    /** Run @p prog to completion; panics on deadlock (a compiler bug). */
    RunStats run(const isa::Program &prog);

    const SystemConfig &config() const { return cfg_; }
    unsigned devices() const { return devices_; }

  private:
    SystemConfig cfg_;
    unsigned devices_;
};

} // namespace ianus

#endif // IANUS_IANUS_EXECUTION_ENGINE_HH
