#include "ianus/pim_control_unit.hh"

#include "common/logging.hh"
#include "common/types.hh"
#include "pim/pim_tiling.hh"

namespace ianus
{

PimControlUnit::PimControlUnit(const dram::Gddr6Config &mem) : mem_(mem)
{
    mem_.validate();
}

std::vector<MicroCommandStep>
PimControlUnit::decode(const pim::MacroCommand &macro,
                       unsigned channel_count) const
{
    ++decoded_;
    pim::GemvTiling tiling = pim::GemvTiling::compute(
        macro.rows, macro.cols, mem_, channel_count);

    std::vector<MicroCommandStep> seq;
    const std::uint64_t k_tiles = tiling.kTiles();
    const std::uint64_t row_tiles = tiling.rowTiles();
    const unsigned elems_per_burst =
        static_cast<unsigned>(mem_.burstBytes / pim::elemBytes);

    // K-slice outer, row-tile inner (see pim_channel.hh): the global
    // buffer is filled once per slice and reused across row tiles.
    for (std::uint64_t kt = 0; kt < k_tiles; ++kt) {
        std::uint64_t k_elems = tiling.kSliceElems(kt);
        std::uint64_t gb_bursts =
            ceilDiv(k_elems * pim::elemBytes, mem_.burstBytes);
        for (std::uint64_t i = 0; i < gb_bursts; ++i)
            seq.push_back({pim::MicroOp::WRGB, 0, kt});

        std::uint64_t mac_bursts =
            ceilDiv(k_elems, std::uint64_t{elems_per_burst});
        for (std::uint64_t rt = 0; rt < row_tiles; ++rt) {
            seq.push_back({pim::MicroOp::ACTAB, rt, kt});
            if (macro.hasBias && kt == 0)
                seq.push_back({pim::MicroOp::WRBIAS, rt, kt});
            for (std::uint64_t m = 0; m < mac_bursts; ++m)
                seq.push_back({pim::MicroOp::MACAB, rt, kt});
            seq.push_back({pim::MicroOp::RDMAC, rt, kt});
            if (macro.fusedGelu && kt == k_tiles - 1)
                seq.push_back({pim::MicroOp::ACTAF, rt, kt});
            seq.push_back({pim::MicroOp::PREAB, rt, kt});
        }
    }
    seq.push_back({pim::MicroOp::EOC, 0, 0});
    return seq;
}

pim::MicroBudget
PimControlUnit::budget(const pim::MacroCommand &macro,
                       unsigned channel_count) const
{
    pim::MicroBudget b;
    for (const MicroCommandStep &s : decode(macro, channel_count)) {
        switch (s.op) {
          case pim::MicroOp::WRGB: ++b.wrgb; break;
          case pim::MicroOp::ACTAB: ++b.actab; break;
          case pim::MicroOp::MACAB: ++b.macab; break;
          case pim::MicroOp::ACTAF: ++b.actaf; break;
          case pim::MicroOp::RDMAC: ++b.rdmac; break;
          case pim::MicroOp::PREAB: ++b.preab; break;
          case pim::MicroOp::WRBIAS: ++b.wrbias; break;
          case pim::MicroOp::EOC: break;
        }
    }
    --decoded_; // budget() is an inspection, not a decode
    return b;
}

} // namespace ianus
