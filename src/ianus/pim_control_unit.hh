/**
 * @file
 * PIM control unit (Section 4.3).
 *
 * The PCU receives macro PIM commands from the command scheduler and
 * decodes each into the micro PIM command sequence the PIM memory
 * controllers execute (WRGB trains, all-bank activates, MAC streams,
 * accumulator readouts, precharges, an EOC completion marker). The NoC
 * broadcasts the sequence to every participating channel, so one decode
 * drives all channels in lockstep.
 *
 * The execution engine consumes decode *timing* through
 * pim::PimChannelEngine; this class materializes the actual sequence for
 * verification (the micro counts must match the timing engine's budget)
 * and for the FPGA-prototype-style traces of the examples.
 */

#ifndef IANUS_IANUS_PIM_CONTROL_UNIT_HH
#define IANUS_IANUS_PIM_CONTROL_UNIT_HH

#include <cstdint>
#include <vector>

#include "dram/dram_params.hh"
#include "pim/pim_channel.hh"
#include "pim/pim_command.hh"

namespace ianus
{

/** One decoded micro command (per-channel view). */
struct MicroCommandStep
{
    pim::MicroOp op;
    std::uint64_t rowTile;  ///< tile-row index (ACTAB/MACAB/... context)
    std::uint64_t kTile;    ///< K-slice index
};

/** Macro-to-micro decoder. */
class PimControlUnit
{
  public:
    explicit PimControlUnit(const dram::Gddr6Config &mem);

    /**
     * Decode @p macro for @p channel_count lockstep channels.
     * The sequence ends with EOC (the completion signal the command
     * scheduler waits for before re-enabling off-chip DMA commands).
     */
    std::vector<MicroCommandStep> decode(const pim::MacroCommand &macro,
                                         unsigned channel_count) const;

    /** Micro-command counts of a decode (must equal the timing budget). */
    pim::MicroBudget budget(const pim::MacroCommand &macro,
                            unsigned channel_count) const;

    /** Macro commands decoded so far. */
    std::uint64_t decoded() const { return decoded_; }

  private:
    dram::Gddr6Config mem_;
    mutable std::uint64_t decoded_ = 0;
};

} // namespace ianus

#endif // IANUS_IANUS_PIM_CONTROL_UNIT_HH
