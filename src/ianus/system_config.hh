/**
 * @file
 * Full-system configuration (Tables 1 and 2).
 *
 * One SystemConfig describes a single IANUS device: 4 NPU cores, 8 PIM
 * memory controllers fronting 8 GDDR6(-AiM) channels, PCIe 5.0 ×16 host
 * interface. Factory functions produce the paper's configurations:
 * IANUS, NPU-MEM (same device, PIM disabled, plain GDDR6), and the
 * partitioned-memory variant of Fig 13.
 */

#ifndef IANUS_IANUS_SYSTEM_CONFIG_HH
#define IANUS_IANUS_SYSTEM_CONFIG_HH

#include "dram/channel_arbiter.hh"
#include "dram/dram_params.hh"
#include "noc/noc.hh"
#include "npu/command_scheduler.hh"
#include "npu/matrix_unit.hh"
#include "npu/npu_core.hh"
#include "npu/vector_unit.hh"
#include "pim/pim_channel.hh"

namespace ianus
{

/** Unified (PIM is the NPU's main memory) vs partitioned (Section 3.2). */
enum class MemoryMode : std::uint8_t { Unified, Partitioned };

const char *toString(MemoryMode mode);

/** Host/device interconnect for multi-device scaling (Section 7.1). */
struct PcieParams
{
    double bytesPerTick = 64.0 / 1000.0; ///< PCIe 5.0 x16 ~= 64 GB/s
    /** Per-hop setup cost of one peer-to-peer ring step (doorbell +
     *  DMA descriptor); calibrated against the Fig 18 scaling curve. */
    Tick latency = 500 * tickPerNs;
};

/** One IANUS device. */
struct SystemConfig
{
    unsigned cores = 4;
    npu::MatrixUnitParams mu{};
    npu::VectorUnitParams vu{};
    npu::CoreMemoryParams coreMem{};
    npu::SchedulerConfig sched{};
    dram::Gddr6Config mem{};
    pim::PimUnitParams pimUnit{};
    noc::NocParams noc{};
    PcieParams pcie{};

    bool pimEnabled = true;
    MemoryMode memoryMode = MemoryMode::Unified;

    /**
     * PIM chips with active compute capability (Fig 15 sensitivity).
     * Memory bandwidth/capacity stays at mem.channels regardless.
     */
    unsigned pimChips = 4;

    /** Fraction of peak a DMA stream sustains (refresh, turnaround). */
    double dmaEfficiency = 0.8;

    /** PCU macro decode latency (pipelined with PIM execution). */
    Tick pcuDispatch = 200 * tickPerNs;

    /** Per-command scheduler/dependency-resolution overhead. */
    Tick cmdOverhead = 250 * tickPerNs;

    /** Device TDP for the Section 7.2 cost analysis. */
    double tdpWatts = 120.0;

    // --- Derived quantities -------------------------------------------

    /** NPU peak throughput in TFLOPS (Table 2: 184). */
    double npuPeakTflops() const { return cores * mu.peakTflops(); }

    /** PIM peak throughput in TFLOPS (1 TFLOPS per chip). */
    double
    pimPeakTflops() const
    {
        return pimChips * mem.channelsPerChip * mem.banksPerChannel *
               pimUnit.puGflops / 1000.0;
    }

    /** Aggregate PIM-internal bandwidth in GB/s (Table 2: 4096). */
    double
    pimInternalGBs() const
    {
        // Each PU consumes one 32 B burst per ns: 32 GB/s per bank.
        return static_cast<double>(pimChips) * mem.channelsPerChip *
               mem.banksPerChannel *
               (static_cast<double>(mem.burstBytes) /
                static_cast<double>(mem.burstTicks())) * 1000.0;
    }

    /** Channels on which PIM compute may run. */
    dram::ChannelSet pimChannelMask() const;

    /** Channels backing plain NPU DRAM traffic. */
    dram::ChannelSet dramChannelMask() const;

    /** Channels of the chip serving core @p core's PIM work. */
    dram::ChannelSet pimChipMaskForCore(unsigned core) const;

    /**
     * Channels of the memory chip that *stores* core @p core's head-wise
     * data (QKV weights, KV cache) in the unified system. Independent of
     * pimChips: the Fig-15 sensitivity study varies compute capability
     * while memory layout and bandwidth stay fixed.
     */
    dram::ChannelSet memoryChipMaskForCore(unsigned core) const;

    /** Channel count in the PIM compute pool. */
    unsigned pimChannelCount() const;

    /** Capacity available for model weights (per memory pool). */
    std::uint64_t weightCapacityBytes() const;

    void validate() const;

    // --- Factories ----------------------------------------------------

    /** The paper's IANUS device (Tables 1/2). */
    static SystemConfig ianusDefault();

    /** NPU-MEM: identical, standard GDDR6 instead of PIM. */
    static SystemConfig npuMem();

    /** Partitioned memory system of Fig 13 (half DRAM / half PIM). */
    static SystemConfig partitioned();
};

} // namespace ianus

#endif // IANUS_IANUS_SYSTEM_CONFIG_HH
