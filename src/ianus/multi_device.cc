#include "ianus/ianus_system.hh"

#include <sstream>

#include "common/logging.hh"
#include "serve/compiled_model.hh"

namespace ianus
{

MultiDeviceSystem::MultiDeviceSystem(const SystemConfig &per_device,
                                     unsigned devices)
    : cfg_(per_device), devices_(devices)
{
    IANUS_ASSERT(devices_ >= 1, "need at least one device");
    cfg_.validate();
}

// Out of line so the header can hold CompiledModel by forward
// declaration only.
MultiDeviceSystem::~MultiDeviceSystem() = default;

const serve::CompiledModel &
MultiDeviceSystem::compile(const workloads::ModelConfig &model,
                           compiler::BuildOptions opts) const
{
    opts.devices = devices_;

    // Key on every field that changes compilation output; name alone is
    // not enough (callers may hand-build ModelConfigs).
    std::ostringstream key;
    key << model.name << '/' << toString(model.family) << '/'
        << model.embDim << 'x' << model.headDim << 'x' << model.nHeads
        << 'x' << model.nBlocks << 'v' << model.vocab << '|'
        << compiler::toString(opts.policy) << '/'
        << compiler::toString(opts.attnMapping) << '/'
        << static_cast<int>(opts.fcPlacement);

    auto it = compiled_.find(key.str());
    if (it == compiled_.end())
        it = compiled_
                 .emplace(key.str(), std::make_unique<serve::CompiledModel>(
                                         cfg_, model, opts))
                 .first;
    return *it->second;
}

InferenceReport
MultiDeviceSystem::run(const workloads::ModelConfig &model,
                       const workloads::InferenceRequest &request,
                       compiler::BuildOptions opts,
                       unsigned token_stride) const
{
    // Unlike the one-shot IanusSystem::run, repeated runs memoize: the
    // scaling studies sweep many requests per (model, device count)
    // pair, so the programs are kept and shared via compile().
    return compile(model, opts).run(request, token_stride);
}

double
MultiDeviceSystem::tokensPerSecond(const InferenceReport &report)
{
    if (report.generationSteps == 0)
        return 0.0;
    double sec = ticksToSec(report.generation.wallTicks);
    return sec > 0.0 ? static_cast<double>(report.generationSteps) / sec
                     : 0.0;
}

} // namespace ianus
