#include "ianus/ianus_system.hh"

#include "common/logging.hh"
#include "serve/compiled_model.hh"

namespace ianus
{

MultiDeviceSystem::MultiDeviceSystem(const SystemConfig &per_device,
                                     unsigned devices)
    : cfg_(per_device), devices_(devices)
{
    IANUS_ASSERT(devices_ >= 1, "need at least one device");
    cfg_.validate();
}

InferenceReport
MultiDeviceSystem::run(const workloads::ModelConfig &model,
                       const workloads::InferenceRequest &request,
                       compiler::BuildOptions opts,
                       unsigned token_stride) const
{
    opts.devices = devices_;
    serve::CompiledModel compiled(cfg_, model, opts);
    return compiled.run(request, token_stride);
}

double
MultiDeviceSystem::tokensPerSecond(const InferenceReport &report)
{
    if (report.generationSteps == 0)
        return 0.0;
    double sec = ticksToSec(report.generation.wallTicks);
    return sec > 0.0 ? static_cast<double>(report.generationSteps) / sec
                     : 0.0;
}

} // namespace ianus
