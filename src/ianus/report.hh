/**
 * @file
 * Run statistics and inference reports.
 *
 * RunStats is what one ExecutionEngine::run() produces: wall-clock ticks,
 * busy time per unit and per Fig-10 operation class, datapath activity
 * counts (the energy model's inputs), and DRAM/PIM traffic. An
 * InferenceReport aggregates the summarization stage and every generation
 * step of one request. Under batched serving the generation stats are a
 * per-request *share* — each batched step contributes 1/B of its
 * RunStats to each of its B riders; the double fields re-sum exactly in
 * aggregate, while the integer wallTicks truncates per share (up to
 * B-1 ticks, i.e. picoseconds, below the step's wall time) — and
 * generationSteps still counts this request's own tokens.
 */

#ifndef IANUS_IANUS_REPORT_HH
#define IANUS_IANUS_REPORT_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/command.hh"
#include "pim/pim_command.hh"

namespace ianus
{

/** Statistics of one engine run (one program execution). */
struct RunStats
{
    static constexpr std::size_t numClasses = 8;
    static constexpr std::size_t numUnits = 6;

    Tick wallTicks = 0;
    std::array<double, numClasses> classBusy{}; ///< ticks, by OpClass
    /**
     * Interval-union span per class: ticks during which at least one
     * command of the class was in flight. Unlike busy sums, spans see
     * contention — a KV load stretched by competing weight traffic
     * stretches the self-attention span.
     */
    std::array<double, numClasses> classSpan{};
    /**
     * Exclusive attribution: every instant with work in flight is
     * charged to exactly one active class (FC classes take precedence
     * over attention/vector classes). Categories are additive, like the
     * paper's Fig-10 stacked bars: work hidden under an FC offloaded to
     * PIM stops being charged — which is how the paper's self-attention
     * speedup materializes without offloading any attention op.
     */
    std::array<double, numClasses> classExclusive{};
    std::array<double, numUnits> unitBusy{};    ///< ticks, by UnitKind

    double commands = 0;
    double muFlops = 0;
    double vuElems = 0;
    double dramReadBytes = 0;   ///< off-chip normal reads
    double dramWriteBytes = 0;  ///< off-chip normal writes
    double pimWeightBytes = 0;  ///< weight bytes streamed through MACs
    double pimMacros = 0;
    double pimActivates = 0;    ///< ACTAB count (energy: row opens)
    double pimGbBursts = 0;     ///< WRGB bursts (external-bus energy)
    double pimRdBursts = 0;     ///< RDMAC bursts

    double &busy(isa::OpClass cls);
    double busy(isa::OpClass cls) const;
    double &busy(isa::UnitKind unit);
    double busy(isa::UnitKind unit) const;
    double &span(isa::OpClass cls);
    double span(isa::OpClass cls) const;
    double exclusive(isa::OpClass cls) const;

    /** Accumulate @p o scaled by @p w (stride integration, trapezoid
     *  segment costing, per-request 1/B shares of batched steps). */
    void scaleAdd(const RunStats &o, double w);

    /** this += o. */
    void merge(const RunStats &o) { scaleAdd(o, 1.0); }

    double wallMs() const { return ticksToMs(wallTicks); }
};

/** End-to-end report for one inference request. */
struct InferenceReport
{
    std::uint64_t inputTokens = 0;
    std::uint64_t outputTokens = 0;

    RunStats summarization;
    RunStats generation;   ///< all generation steps combined
    std::uint64_t generationSteps = 0;

    Tick
    totalTicks() const
    {
        return summarization.wallTicks + generation.wallTicks;
    }

    double totalMs() const { return ticksToMs(totalTicks()); }
    double summarizationMs() const { return summarization.wallMs(); }
    double generationMs() const { return generation.wallMs(); }

    /** Average latency per generated token (generation stage only). */
    double
    msPerGeneratedToken() const
    {
        return generationSteps
                   ? generationMs() / static_cast<double>(generationSteps)
                   : 0.0;
    }

    RunStats combined() const;

    /** Achieved FLOPS over the whole request, in TFLOPS. */
    double achievedTflops() const;

    std::string summary() const;
};

} // namespace ianus

#endif // IANUS_IANUS_REPORT_HH
