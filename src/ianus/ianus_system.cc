#include "ianus/ianus_system.hh"

#include "serve/compiled_model.hh"

namespace ianus
{

IanusSystem::IanusSystem(const SystemConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

InferenceReport
IanusSystem::run(const workloads::ModelConfig &model,
                 const workloads::InferenceRequest &request,
                 const compiler::BuildOptions &opts,
                 unsigned token_stride) const
{
    // One-shot convenience path: compile, serve once, throw the
    // programs away. Serving loops should hold a CompiledModel instead
    // and reuse its caches across requests.
    serve::CompiledModel compiled(cfg_, model, opts);
    return compiled.run(request, token_stride);
}

} // namespace ianus
