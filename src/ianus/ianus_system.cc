#include "ianus/ianus_system.hh"

#include <vector>

#include "common/logging.hh"

namespace ianus
{

IanusSystem::IanusSystem(const SystemConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

InferenceReport
IanusSystem::run(const workloads::ModelConfig &model,
                 const workloads::InferenceRequest &request,
                 const compiler::BuildOptions &opts,
                 unsigned token_stride) const
{
    IANUS_ASSERT(token_stride >= 1, "token stride must be positive");
    compiler::WorkloadBuilder builder(cfg_, model, opts);
    ExecutionEngine engine(cfg_, opts.devices);

    InferenceReport report;
    report.inputTokens = request.inputTokens;
    report.outputTokens = request.outputTokens;

    isa::Program sum = builder.buildSummarization(request.inputTokens);
    report.summarization = engine.run(sum);

    // Encoders have no generation stage at all; for decoders the first
    // output token is produced by the summarization LM head and
    // generation steps produce the rest.
    if (!model.decoder())
        return report;
    std::uint64_t steps =
        request.outputTokens > 0 ? request.outputTokens - 1 : 0;
    report.generationSteps = steps;
    if (steps == 0)
        return report;

    auto step_stats = [&](std::uint64_t t) {
        std::uint64_t kv = request.inputTokens + 1 + t;
        isa::Program prog = builder.buildGenerationToken(kv);
        return engine.run(prog);
    };

    if (token_stride == 1 || steps <= 2 * token_stride) {
        for (std::uint64_t t = 0; t < steps; ++t)
            report.generation.merge(step_stats(t));
        return report;
    }

    // Strided sampling with trapezoidal integration: token latency is a
    // smooth function of KV length (only attention terms grow).
    std::vector<std::uint64_t> samples;
    for (std::uint64_t t = 0; t < steps; t += token_stride)
        samples.push_back(t);
    if (samples.back() != steps - 1)
        samples.push_back(steps - 1);

    std::vector<RunStats> stats;
    stats.reserve(samples.size());
    for (std::uint64_t t : samples)
        stats.push_back(step_stats(t));

    for (std::size_t j = 0; j < samples.size(); ++j) {
        double w = 0.0;
        if (j == 0)
            w = static_cast<double>(samples[1] - samples[0]) / 2.0 + 0.5;
        else if (j + 1 == samples.size())
            w = static_cast<double>(samples[j] - samples[j - 1]) / 2.0 +
                0.5;
        else
            w = static_cast<double>(samples[j + 1] - samples[j - 1]) / 2.0;
        report.generation.scaleAdd(stats[j], w);
    }
    return report;
}

} // namespace ianus
