#include "ianus/report.hh"

#include <sstream>

#include "common/logging.hh"

namespace ianus
{

double &
RunStats::busy(isa::OpClass cls)
{
    return classBusy[static_cast<std::size_t>(cls)];
}

double
RunStats::busy(isa::OpClass cls) const
{
    return classBusy[static_cast<std::size_t>(cls)];
}

double &
RunStats::busy(isa::UnitKind unit)
{
    return unitBusy[static_cast<std::size_t>(unit)];
}

double
RunStats::busy(isa::UnitKind unit) const
{
    return unitBusy[static_cast<std::size_t>(unit)];
}

double &
RunStats::span(isa::OpClass cls)
{
    return classSpan[static_cast<std::size_t>(cls)];
}

double
RunStats::span(isa::OpClass cls) const
{
    return classSpan[static_cast<std::size_t>(cls)];
}

double
RunStats::exclusive(isa::OpClass cls) const
{
    return classExclusive[static_cast<std::size_t>(cls)];
}

void
RunStats::scaleAdd(const RunStats &o, double w)
{
    wallTicks += static_cast<Tick>(static_cast<double>(o.wallTicks) * w);
    for (std::size_t i = 0; i < numClasses; ++i) {
        classBusy[i] += o.classBusy[i] * w;
        classSpan[i] += o.classSpan[i] * w;
        classExclusive[i] += o.classExclusive[i] * w;
    }
    for (std::size_t i = 0; i < numUnits; ++i)
        unitBusy[i] += o.unitBusy[i] * w;
    commands += o.commands * w;
    muFlops += o.muFlops * w;
    vuElems += o.vuElems * w;
    dramReadBytes += o.dramReadBytes * w;
    dramWriteBytes += o.dramWriteBytes * w;
    pimWeightBytes += o.pimWeightBytes * w;
    pimMacros += o.pimMacros * w;
    pimActivates += o.pimActivates * w;
    pimGbBursts += o.pimGbBursts * w;
    pimRdBursts += o.pimRdBursts * w;
}

RunStats
InferenceReport::combined() const
{
    RunStats s = summarization;
    s.merge(generation);
    return s;
}

double
InferenceReport::achievedTflops() const
{
    RunStats s = combined();
    double flops = s.muFlops + 2.0 * s.pimWeightBytes / 2.0;
    double sec = ticksToSec(totalTicks());
    return sec > 0.0 ? flops / sec / 1e12 : 0.0;
}

std::string
InferenceReport::summary() const
{
    std::ostringstream os;
    os << "(" << inputTokens << "," << outputTokens << ") total "
       << totalMs() << " ms (summarization " << summarizationMs()
       << " ms, generation " << generationMs() << " ms over "
       << generationSteps << " steps)";
    return os.str();
}

} // namespace ianus
