/**
 * @file
 * One-shot entry points: an IANUS device running end-to-end inference.
 *
 * IanusSystem::run() simulates one request — the summarization stage
 * over the input tokens, then one generation step per output token (the
 * first output token falls out of summarization's LM head, as in the
 * paper's (x,1) configurations). It is a thin wrapper over
 * serve::CompiledModel, which compiles the model once and memoizes
 * programs; serving loops that replay many requests should hold a
 * CompiledModel (or a serve::ServingEngine on top of it) instead of
 * calling run() per request.
 *
 * For long generations a token stride can sample generation steps and
 * integrate between samples (token latency varies smoothly with KV
 * length); stride 1 simulates every step exactly.
 */

#ifndef IANUS_IANUS_IANUS_SYSTEM_HH
#define IANUS_IANUS_IANUS_SYSTEM_HH

#include <map>
#include <memory>
#include <string>

#include "compiler/workload_builder.hh"
#include "ianus/execution_engine.hh"
#include "ianus/report.hh"
#include "ianus/system_config.hh"
#include "workloads/model_config.hh"

namespace ianus::serve
{
class CompiledModel;
} // namespace ianus::serve

namespace ianus
{

/** One IANUS device (or NPU-MEM / partitioned variant, per config). */
class IanusSystem
{
  public:
    explicit IanusSystem(const SystemConfig &cfg);

    /**
     * Simulate one inference request end to end (compiles the model,
     * serves once, discards the programs). Rejects invalid requests
     * (zero input/output tokens, zero stride) with a fatal error.
     *
     * @param model        Transformer configuration.
     * @param request      (input tokens, output tokens), batch 1.
     * @param opts         Compiler options (scheduling policy, attention
     *                     mapping, FC placement, devices).
     * @param token_stride Generation-step sampling stride (1 = exact).
     */
    InferenceReport run(const workloads::ModelConfig &model,
                        const workloads::InferenceRequest &request,
                        const compiler::BuildOptions &opts =
                            compiler::BuildOptions{},
                        unsigned token_stride = 1) const;

    const SystemConfig &config() const { return cfg_; }

  private:
    SystemConfig cfg_;
};

/**
 * Symmetric multi-device system (Section 7.1): weights and heads are
 * partitioned across devices x cores; activations allgather over PCIe at
 * the per-block sync points. Device 0 is simulated; the others are
 * symmetric by construction.
 */
class MultiDeviceSystem
{
  public:
    MultiDeviceSystem(const SystemConfig &per_device, unsigned devices);
    ~MultiDeviceSystem();

    MultiDeviceSystem(MultiDeviceSystem &&) = default;
    MultiDeviceSystem &operator=(MultiDeviceSystem &&) = default;

    /**
     * Compile (and memoize) @p model partitioned across this system's
     * devices. Repeated runs of the same (model, opts) pair share one
     * CompiledModel — and therefore its program cache — instead of
     * recompiling per call. The reference stays valid for the lifetime
     * of this system. Also the pool-construction helper: hand the
     * result (or its config triple) to serve::DevicePool to replicate
     * a tensor-parallel group.
     */
    const serve::CompiledModel &
    compile(const workloads::ModelConfig &model,
            compiler::BuildOptions opts = compiler::BuildOptions{}) const;

    InferenceReport run(const workloads::ModelConfig &model,
                        const workloads::InferenceRequest &request,
                        compiler::BuildOptions opts =
                            compiler::BuildOptions{},
                        unsigned token_stride = 1) const;

    unsigned devices() const { return devices_; }

    /** Aggregate TDP of the appliance (Section 7.2). */
    double
    totalTdpWatts() const
    {
        return static_cast<double>(devices_) * cfg_.tdpWatts;
    }

    /** Generation throughput of a report, tokens per second (Fig 18). */
    static double tokensPerSecond(const InferenceReport &report);

  private:
    SystemConfig cfg_;
    unsigned devices_;

    /** Memoized CompiledModels keyed by (model, opts); see compile(). */
    mutable std::map<std::string,
                     std::unique_ptr<serve::CompiledModel>>
        compiled_;
};

} // namespace ianus

#endif // IANUS_IANUS_IANUS_SYSTEM_HH
