#include "ianus/system_config.hh"

#include "common/logging.hh"

namespace ianus
{

const char *
toString(MemoryMode mode)
{
    switch (mode) {
      case MemoryMode::Unified: return "unified";
      case MemoryMode::Partitioned: return "partitioned";
    }
    return "?";
}

dram::ChannelSet
SystemConfig::pimChannelMask() const
{
    if (!pimEnabled)
        return 0;
    unsigned pool = mem.channels;
    if (memoryMode == MemoryMode::Partitioned)
        pool = mem.channels / 2; // half the capacity is plain DRAM
    unsigned n = std::min(pool, pimChips * mem.channelsPerChip);
    return n >= 32 ? ~0u : ((1u << n) - 1u);
}

dram::ChannelSet
SystemConfig::dramChannelMask() const
{
    dram::ChannelSet all = dram::allChannels(mem);
    if (memoryMode == MemoryMode::Unified)
        return all; // unified: every channel serves normal traffic
    // Partitioned: the upper half is the NPU's dedicated DRAM.
    unsigned half = mem.channels / 2;
    dram::ChannelSet lower = (1u << half) - 1u;
    return all & ~lower;
}

dram::ChannelSet
SystemConfig::pimChipMaskForCore(unsigned core) const
{
    dram::ChannelSet pool = pimChannelMask();
    if (pool == 0)
        return 0;
    unsigned pool_chips = 0;
    for (unsigned chip = 0; chip < mem.chips(); ++chip)
        if ((dram::chipChannels(mem, chip) & pool) ==
            dram::chipChannels(mem, chip))
            ++pool_chips;
    IANUS_ASSERT(pool_chips > 0, "PIM pool smaller than one chip");
    return dram::chipChannels(mem, core % pool_chips);
}

dram::ChannelSet
SystemConfig::memoryChipMaskForCore(unsigned core) const
{
    return dram::chipChannels(mem, core % mem.chips());
}

unsigned
SystemConfig::pimChannelCount() const
{
    dram::ChannelSet m = pimChannelMask();
    unsigned n = 0;
    while (m) {
        n += m & 1u;
        m >>= 1;
    }
    return n;
}

std::uint64_t
SystemConfig::weightCapacityBytes() const
{
    if (memoryMode == MemoryMode::Partitioned)
        return mem.capacityBytes / 2;
    return mem.capacityBytes;
}

void
SystemConfig::validate() const
{
    mem.validate();
    if (cores == 0)
        IANUS_FATAL("at least one NPU core required");
    if (pimEnabled && pimChips == 0)
        IANUS_FATAL("PIM enabled with zero PIM chips");
    if (pimEnabled && pimChips > mem.chips())
        IANUS_FATAL("more PIM chips (", pimChips, ") than memory chips (",
                    mem.chips(), ")");
    if (dmaEfficiency <= 0.0 || dmaEfficiency > 1.0)
        IANUS_FATAL("DMA efficiency must be in (0, 1]");
}

SystemConfig
SystemConfig::ianusDefault()
{
    SystemConfig cfg;
    cfg.validate();
    return cfg;
}

SystemConfig
SystemConfig::npuMem()
{
    SystemConfig cfg;
    cfg.pimEnabled = false;
    cfg.validate();
    return cfg;
}

SystemConfig
SystemConfig::partitioned()
{
    SystemConfig cfg;
    cfg.memoryMode = MemoryMode::Partitioned;
    // Half the memory (2 chips, 4 channels) carries PIM compute; the
    // other half is the NPU's dedicated DRAM (Fig 13's configuration).
    cfg.pimChips = 2;
    cfg.validate();
    return cfg;
}

} // namespace ianus
